"""Tests for ASHA fidelity scheduling: ladder math, loop integration, spec.

The parity oracle: the final rung *is* the plain full-fidelity evaluator,
so every full-fidelity result of a scheduled run must be bit-identical to
the same structure evaluated without a scheduler.
"""

import json

import pytest

from repro.core.invariance import canonical_key
from repro.core.search_space import enumerate_f4_structures
from repro.experiments import (
    ExperimentSpec,
    FidelityScheduler,
    SchedulerSpec,
    SearchLoop,
    SearchSpec,
    run_experiment,
    spec_digest,
)
from repro.experiments.runner import HISTORY_FILENAME
from repro.experiments.spec import DatasetSpec
from repro.utils.config import ConfigError, PredictorConfig, TrainingConfig


class TestLadder:
    def test_geometric_ladder_ends_at_full(self):
        scheduler = FidelityScheduler(reduction=3, min_epochs=1)
        assert scheduler.ladder(9) == [1, 3, 9]
        assert scheduler.ladder(27) == [1, 3, 9, 27]

    def test_near_full_top_rung_is_dropped(self):
        # 3 -> 12 is less than one reduction step; a rung at 9 would train
        # almost-full models only to retrain survivors at 12.
        scheduler = FidelityScheduler(reduction=3, min_epochs=1)
        assert scheduler.ladder(12) == [1, 3, 12]
        assert scheduler.ladder(4) == [1, 4]

    def test_full_at_or_below_min_is_a_noop_ladder(self):
        scheduler = FidelityScheduler(reduction=3, min_epochs=5)
        assert scheduler.ladder(5) == [5]
        assert scheduler.ladder(3) == [3]

    def test_max_rungs_drops_cheapest_first(self):
        scheduler = FidelityScheduler(reduction=3, min_epochs=1, max_rungs=2)
        assert scheduler.ladder(27) == [9, 27]

    def test_promote_count(self):
        scheduler = FidelityScheduler(reduction=3)
        assert scheduler.promote_count(9) == 3
        assert scheduler.promote_count(4) == 2
        assert scheduler.promote_count(1) == 1

    def test_validation(self):
        with pytest.raises(ValueError, match="reduction"):
            FidelityScheduler(reduction=1)
        with pytest.raises(ValueError, match="min_epochs"):
            FidelityScheduler(min_epochs=0)
        with pytest.raises(ValueError, match="max_rungs"):
            FidelityScheduler(max_rungs=1)


class FixedFrontStrategy:
    """Proposes one fixed candidate front, then finishes.

    Captures the loop's ``SearchState`` (via ``observe``) so tests can
    inspect rung history, and the evaluations the strategy actually saw.
    """

    name = "fixed-front"

    def __init__(self, structures):
        self._structures = list(structures)
        self._proposed = False
        self.observed = []
        self.state = None

    def propose(self, state):
        self._proposed = True
        return list(self._structures)

    def observe(self, state, evaluations):
        self.state = state
        self.observed.append(list(evaluations))

    def finished(self, state):
        return self._proposed


@pytest.fixture(scope="module")
def asha_training_config():
    # epochs=4 with reduction=3 gives the two-rung ladder [1, 4].
    return TrainingConfig(dimension=8, epochs=4, batch_size=64, learning_rate=0.5, seed=0)


@pytest.fixture(scope="module")
def front():
    structures = list(enumerate_f4_structures())  # all 5 canonical f4 seeds
    assert len(structures) == 5
    return structures


class TestScheduledLoop:
    def test_final_rung_matches_plain_evaluator_bitwise(
        self, tiny_graph, asha_training_config, front
    ):
        plain = SearchLoop(
            tiny_graph, FixedFrontStrategy(front), asha_training_config, seed=0
        ).run()
        reference = {
            canonical_key(record.structure): record.validation_mrr
            for record in plain.records
        }

        scheduled = SearchLoop(
            tiny_graph,
            FixedFrontStrategy(front),
            asha_training_config,
            seed=0,
            scheduler=FidelityScheduler(reduction=3),
        ).run()
        survivors = [r for r in scheduled.records if r.full_fidelity]
        assert 1 <= len(survivors) < len(front)
        for record in survivors:
            assert record.validation_mrr == reference[canonical_key(record.structure)]
        assert scheduled.best_mrr in reference.values()

    def test_only_full_fidelity_counts_and_reaches_observe(
        self, tiny_graph, asha_training_config, front
    ):
        strategy = FixedFrontStrategy(front)
        loop = SearchLoop(
            tiny_graph,
            strategy,
            asha_training_config,
            seed=0,
            scheduler=FidelityScheduler(reduction=3),
        )
        result = loop.run()
        survivors = [r for r in result.records if r.full_fidelity]
        rung_records = [r for r in result.records if not r.full_fidelity]
        assert result.num_evaluations == len(survivors)
        assert len(rung_records) == len(front)  # one cheap rung over the front
        # The strategy saw exactly the full-fidelity evaluations.
        assert [len(batch) for batch in strategy.observed] == [len(survivors)]
        assert len(strategy.state.evaluations) == len(survivors)

    def test_rung_records_carry_metadata(self, tiny_graph, asha_training_config, front):
        loop = SearchLoop(
            tiny_graph,
            FixedFrontStrategy(front),
            asha_training_config,
            seed=0,
            scheduler=FidelityScheduler(reduction=3),
        )
        result = loop.run()
        for record in result.records:
            if record.full_fidelity:
                assert record.rung is None and record.rung_epochs is None
            else:
                assert record.rung == 0
                assert record.rung_epochs == 1
        assert loop.rung_stats[1]["evaluated"] == len(front)
        assert loop.rung_stats[1]["promoted"] == 2  # ceil(5 / 3)

    def test_rung_history_recorded_on_state(self, tiny_graph, asha_training_config, front):
        strategy = FixedFrontStrategy(front)
        SearchLoop(
            tiny_graph,
            strategy,
            asha_training_config,
            seed=0,
            scheduler=FidelityScheduler(reduction=3),
        ).run()
        assert strategy.state.rung_history == [
            {"rung": 0, "epochs": 1, "candidates": 5, "promoted": 2, "trained": 5}
        ]

    def test_scheduler_spends_fewer_training_epochs(
        self, tiny_graph, asha_training_config, front
    ):
        plain = SearchLoop(
            tiny_graph, FixedFrontStrategy(front), asha_training_config, seed=0
        )
        plain.run()
        scheduled = SearchLoop(
            tiny_graph,
            FixedFrontStrategy(front),
            asha_training_config,
            seed=0,
            scheduler=FidelityScheduler(reduction=3),
        )
        scheduled.run()
        # 5 x 1 epoch + 2 survivors x 4 epochs, vs 5 x 4 epochs.
        assert plain.total_training_epochs == 20
        assert scheduled.total_training_epochs == 13

    def test_budget_caps_survivors_not_the_front(
        self, tiny_graph, asha_training_config, front
    ):
        result = SearchLoop(
            tiny_graph,
            FixedFrontStrategy(front),
            asha_training_config,
            seed=0,
            scheduler=FidelityScheduler(reduction=3),
        ).run(max_evaluations=1)
        survivors = [r for r in result.records if r.full_fidelity]
        rung_records = [r for r in result.records if not r.full_fidelity]
        assert len(survivors) == 1  # budget applies to recorded evaluations
        assert len(rung_records) == len(front)  # the cheap rung still screens all

    def test_rung_store_isolated_from_full_fidelity_store(
        self, tiny_graph, asha_training_config, front, tmp_path
    ):
        loop = SearchLoop(
            tiny_graph,
            FixedFrontStrategy(front),
            asha_training_config,
            seed=0,
            cache_dir=str(tmp_path),
            scheduler=FidelityScheduler(reduction=3),
        )
        result = loop.run()
        survivors = [r for r in result.records if r.full_fidelity]
        # Store entries are keyed by candidate alone, so rung evaluations
        # live in a sub-store instead of clobbering full-fidelity entries.
        assert len(loop.store) == len(survivors)
        rung_store = loop._rung_evaluators[1].store
        assert rung_store.directory != loop.store.directory
        assert len(rung_store) == len(front)


class TestSchedulerSpec:
    def test_defaults_disabled(self):
        spec = SchedulerSpec()
        assert not spec.enabled
        assert spec.create() is None

    def test_enabled_creates_scheduler(self):
        scheduler = SchedulerSpec(enabled=True, reduction=2, min_epochs=2).create()
        assert scheduler == FidelityScheduler(reduction=2, min_epochs=2)

    def test_invalid_values_fail_at_spec_load(self):
        with pytest.raises(ConfigError, match="reduction"):
            SchedulerSpec(reduction=1)
        with pytest.raises(ConfigError, match="max_rungs"):
            SchedulerSpec(max_rungs=0)

    def test_experiment_spec_round_trip(self):
        spec = ExperimentSpec(
            name="asha",
            scheduler=SchedulerSpec(enabled=True, reduction=2),
        )
        assert ExperimentSpec.from_dict(spec.to_dict()) == spec
        assert spec.to_dict()["scheduler"] == {
            "enabled": True,
            "reduction": 2,
            "min_epochs": 1,
            "max_rungs": None,
        }

    def test_default_spec_serialization_unchanged(self):
        # Pre-scheduler spec files (no "scheduler" section) must keep their
        # digests: the section is only emitted when it differs from default.
        assert "scheduler" not in ExperimentSpec(name="plain").to_dict()
        assert spec_digest(ExperimentSpec(name="plain")) == spec_digest(
            ExperimentSpec(name="plain", scheduler=SchedulerSpec())
        )
        assert spec_digest(ExperimentSpec(name="plain")) != spec_digest(
            ExperimentSpec(name="plain", scheduler=SchedulerSpec(enabled=True))
        )


@pytest.mark.slow  # tier 2: two full experiment runs through the runner
class TestScheduledRunner:
    def _spec(self, **overrides):
        settings = dict(
            name="asha-run",
            seed=0,
            dataset=DatasetSpec(benchmark="wn18rr", scale=0.2, seed=0),
            training=TrainingConfig(dimension=8, epochs=4, batch_size=128, learning_rate=0.5),
            search=SearchSpec(
                strategy="greedy", budget=4, candidates_per_step=6,
                top_parents=3, train_per_step=2,
            ),
            predictor=PredictorConfig(epochs=50),
            scheduler=SchedulerSpec(enabled=True, reduction=3),
        )
        settings.update(overrides)
        return ExperimentSpec(**settings)

    def test_history_and_report_carry_rung_metadata(self, tmp_path):
        record = run_experiment(self._spec(), tmp_path / "asha")
        lines = [
            json.loads(line)
            for line in (record.path / HISTORY_FILENAME).read_text().splitlines()
        ]
        rung_lines = [line for line in lines if "rung" in line]
        full_lines = [line for line in lines if "rung" not in line]
        assert rung_lines, "scheduled run must write rung records"
        for line in rung_lines:
            assert line["full_fidelity"] is False
            assert line["rung_epochs"] >= 1
        assert record.report["num_evaluations"] == len(full_lines)
        assert record.report["scheduler"]["rungs"]
        assert record.report["scheduler"]["total_training_epochs"] > 0

    def test_plain_run_history_has_no_rung_keys(self, tmp_path):
        record = run_experiment(
            self._spec(name="plain-run", scheduler=SchedulerSpec()), tmp_path / "plain"
        )
        for line in record.history:
            assert "rung" not in line and "full_fidelity" not in line
        assert "scheduler" not in record.report
