"""Tests for the candidate evaluator, greedy search, baselines and HPO."""

import numpy as np
import pytest

from repro.core.baselines import BayesSearch, RandomSearch, general_approximator_baseline
from repro.core.evaluator import CandidateEvaluator
from repro.core.greedy_search import AutoSFSearch, SearchResult, search_scoring_function
from repro.core.hpo import HPOSpace, random_search_hpo, tpe_search_hpo
from repro.core.invariance import sign_flip
from repro.core.search_space import enumerate_f4_structures
from repro.kge.scoring import classical_structure
from repro.utils.config import PredictorConfig, SearchConfig, TrainingConfig


@pytest.fixture(scope="module")
def search_training_config():
    return TrainingConfig(dimension=8, epochs=4, batch_size=64, learning_rate=0.5, seed=0)


@pytest.fixture(scope="module")
def evaluator(tiny_graph, search_training_config):
    return CandidateEvaluator(tiny_graph, search_training_config)


class TestCandidateEvaluator:
    def test_evaluation_fields(self, evaluator):
        evaluation = evaluator.evaluate(classical_structure("simple"))
        assert 0.0 <= evaluation.validation_mrr <= 1.0
        assert evaluation.train_seconds > 0
        assert evaluation.num_blocks == 4
        assert not evaluation.from_cache

    def test_cache_hit_for_same_structure(self, evaluator):
        first = evaluator.evaluate(classical_structure("analogy"))
        second = evaluator.evaluate(classical_structure("analogy"))
        assert second.from_cache
        assert second.validation_mrr == first.validation_mrr
        assert second.train_seconds == 0.0

    def test_cache_hit_for_equivalent_structure(self, evaluator):
        structure = classical_structure("complex")
        first = evaluator.evaluate(structure)
        equivalent = sign_flip(structure, (-1, 1, -1, 1))
        second = evaluator.evaluate(equivalent)
        assert second.from_cache
        assert second.validation_mrr == first.validation_mrr

    def test_num_trained_counts_distinct_only(self, tiny_graph, search_training_config):
        fresh = CandidateEvaluator(tiny_graph, search_training_config)
        fresh.evaluate(classical_structure("simple"))
        fresh.evaluate(classical_structure("simple"))
        assert fresh.num_trained == 1
        assert fresh.cache_size == 1

    def test_best_returns_maximum(self, evaluator):
        best = evaluator.best()
        assert best is not None
        assert best.validation_mrr == max(e.validation_mrr for e in evaluator.cached_evaluations())

    def test_evaluate_many(self, evaluator):
        results = evaluator.evaluate_many(list(enumerate_f4_structures())[:2])
        assert len(results) == 2


class TestAutoSFSearch:
    def test_search_produces_result(self, tiny_graph, search_training_config, fast_search_config):
        result = AutoSFSearch(tiny_graph, search_training_config, fast_search_config).run()
        assert isinstance(result, SearchResult)
        assert result.num_evaluations >= 5  # at least the f4 seeds
        assert 0.0 <= result.best_mrr <= 1.0
        assert result.best_structure.num_blocks in (4, 6)

    def test_anytime_curve_monotone(self, tiny_graph, search_training_config, fast_search_config):
        result = AutoSFSearch(tiny_graph, search_training_config, fast_search_config).run()
        curve = result.anytime_curve()
        assert all(b >= a - 1e-12 for a, b in zip(curve, curve[1:]))
        assert len(curve) == result.num_evaluations

    def test_best_per_stage_and_top(self, tiny_graph, search_training_config, fast_search_config):
        result = AutoSFSearch(tiny_graph, search_training_config, fast_search_config).run()
        per_stage = result.best_per_stage()
        assert 4 in per_stage
        top = result.top(3)
        assert len(top) <= 3
        assert top[0].validation_mrr == result.best_mrr

    def test_max_evaluations_cap(self, tiny_graph, search_training_config, fast_search_config):
        result = AutoSFSearch(tiny_graph, search_training_config, fast_search_config).run(
            max_evaluations=6
        )
        assert result.num_evaluations <= 6

    def test_records_have_increasing_order(self, tiny_graph, search_training_config, fast_search_config):
        result = AutoSFSearch(tiny_graph, search_training_config, fast_search_config).run()
        orders = [record.order for record in result.records]
        assert orders == sorted(orders)
        assert orders[0] == 1

    def test_search_reproducible(self, tiny_graph, search_training_config, fast_search_config):
        first = AutoSFSearch(tiny_graph, search_training_config, fast_search_config).run()
        second = AutoSFSearch(tiny_graph, search_training_config, fast_search_config).run()
        assert first.best_structure.key() == second.best_structure.key()
        assert first.best_mrr == pytest.approx(second.best_mrr)

    def test_ablation_no_filter_no_predictor(self, tiny_graph, search_training_config):
        config = SearchConfig(
            max_blocks=6,
            candidates_per_step=6,
            top_parents=2,
            train_per_step=2,
            use_filter=False,
            use_predictor=False,
            seed=0,
        )
        result = AutoSFSearch(tiny_graph, search_training_config, config).run()
        assert result.num_evaluations >= 5

    def test_timing_phases_recorded(self, tiny_graph, search_training_config, fast_search_config):
        search = AutoSFSearch(tiny_graph, search_training_config, fast_search_config)
        search.run()
        summary = search.timing.summary()
        assert "train" in summary and "evaluate" in summary and "filter" in summary
        assert summary["train"]["total"] > 0

    def test_convenience_wrapper(self, tiny_graph, search_training_config, fast_search_config):
        result = search_scoring_function(
            tiny_graph, search_training_config, fast_search_config, max_evaluations=6
        )
        assert isinstance(result, SearchResult)

    def test_shared_evaluator_reuses_cache(self, tiny_graph, search_training_config, fast_search_config):
        evaluator = CandidateEvaluator(tiny_graph, search_training_config)
        AutoSFSearch(tiny_graph, search_training_config, fast_search_config, evaluator=evaluator).run(
            max_evaluations=5
        )
        trained_before = evaluator.num_trained
        AutoSFSearch(tiny_graph, search_training_config, fast_search_config, evaluator=evaluator).run(
            max_evaluations=5
        )
        # The seeds are shared, so the second run must not retrain all of them.
        assert evaluator.num_trained < 2 * trained_before


class TestBaselines:
    def test_random_search(self, tiny_graph, search_training_config):
        result = RandomSearch(tiny_graph, search_training_config, num_blocks=6, seed=0).run(
            max_evaluations=4
        )
        assert result.num_evaluations == 4
        assert all(record.num_blocks == 6 for record in result.records)

    def test_random_search_distinct_structures(self, tiny_graph, search_training_config):
        result = RandomSearch(tiny_graph, search_training_config, num_blocks=6, seed=1).run(
            max_evaluations=5
        )
        keys = {record.structure.key() for record in result.records}
        assert len(keys) == len(result.records)

    def test_bayes_search(self, tiny_graph, search_training_config):
        result = BayesSearch(
            tiny_graph, search_training_config, num_blocks=6, pool_size=8, seed=0
        ).run(max_evaluations=4)
        assert result.num_evaluations == 4
        assert 0.0 <= result.best_mrr <= 1.0

    def test_general_approximator(self, tiny_graph, search_training_config):
        mrr = general_approximator_baseline(tiny_graph, search_training_config)
        assert 0.0 <= mrr <= 1.0


class TestHPO:
    def test_hpo_space_sampling(self):
        space = HPOSpace()
        sample = space.sample(np.random.default_rng(0))
        assert space.learning_rate[0] <= sample["learning_rate"] <= space.learning_rate[1]
        assert sample["batch_size"] in space.batch_sizes

    def test_random_search_hpo_with_stub_objective(self, tiny_graph):
        # Objective prefers small learning rates; the best trial must reflect that.
        def objective(settings):
            return 1.0 - settings["learning_rate"]

        result = random_search_hpo(tiny_graph, num_trials=6, seed=0, objective=objective)
        assert len(result.trials) == 6
        assert result.best_mrr == max(t.validation_mrr for t in result.trials)
        assert result.best_config.learning_rate == min(t.settings["learning_rate"] for t in result.trials)

    def test_tpe_improves_over_warmup(self, tiny_graph):
        target_lr = 0.1

        def objective(settings):
            return -abs(np.log(settings["learning_rate"]) - np.log(target_lr))

        result = tpe_search_hpo(
            tiny_graph, num_trials=12, warmup_trials=4, seed=0, objective=objective
        )
        warmup_best = max(t.validation_mrr for t in result.trials[:4])
        assert result.best_mrr >= warmup_best

    def test_invalid_trial_counts(self, tiny_graph):
        with pytest.raises(ValueError):
            random_search_hpo(tiny_graph, num_trials=0, objective=lambda s: 0.0)
        with pytest.raises(ValueError):
            tpe_search_hpo(tiny_graph, num_trials=4, warmup_trials=1, objective=lambda s: 0.0)

    def test_real_objective_smoke(self, tiny_graph):
        base = TrainingConfig(dimension=8, epochs=2, batch_size=64, seed=0)
        result = random_search_hpo(tiny_graph, base_config=base, model_name="distmult", num_trials=2, seed=0)
        assert len(result.trials) == 2
        assert 0.0 <= result.best_mrr <= 1.0
