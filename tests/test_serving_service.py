"""Tests for the query service: schema, TSV batch mode, HTTP smoke test."""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.kge import train_model
from repro.obs.metrics import (
    PROMETHEUS_CONTENT_TYPE,
    MetricsRegistry,
    parse_prometheus,
)
from repro.serving import (
    InferenceEngine,
    QueryRequest,
    answer_queries,
    create_server,
    export_artifact,
    format_response_rows,
    load_artifact,
    parse_query_line,
    read_query_file,
)
from repro.utils.config import TrainingConfig


@pytest.fixture(scope="module")
def artifact(tiny_graph, tmp_path_factory):
    config = TrainingConfig(dimension=8, epochs=2, batch_size=64, learning_rate=0.5, seed=0)
    model = train_model(tiny_graph, "complex", config)
    path = export_artifact(
        model, tmp_path_factory.mktemp("serving") / "artifact", graph=tiny_graph
    )
    return load_artifact(path)


@pytest.fixture(scope="module")
def engine(artifact):
    return InferenceEngine.from_artifact(artifact)


class TestQuerySchema:
    def test_from_dict_resolves_labels(self, artifact):
        label = artifact.relation_names[0]
        request = QueryRequest.from_dict(
            {"direction": "tail", "entity": "3", "relation": label}, artifact
        )
        assert (request.entity, request.relation) == (3, 0)

    def test_from_dict_missing_fields(self, artifact):
        with pytest.raises(ValueError, match="missing required fields"):
            QueryRequest.from_dict({"direction": "tail"}, artifact)

    def test_invalid_direction(self):
        with pytest.raises(ValueError, match="direction"):
            QueryRequest(direction="sideways", entity=0, relation=0)

    def test_invalid_top_k(self):
        with pytest.raises(ValueError, match="top_k"):
            QueryRequest(direction="tail", entity=0, relation=0, top_k=0)


class TestBatchMode:
    def test_parse_tail_and_head_lines(self, artifact):
        label = artifact.relation_names[1]
        tail = parse_query_line(f"4\t{label}\t?", artifact)
        head = parse_query_line(f"?\t{label}\t9", artifact)
        assert (tail.direction, tail.entity, tail.relation) == ("tail", 4, 1)
        assert (head.direction, head.entity, head.relation) == ("head", 9, 1)

    def test_parse_rejects_ambiguous_lines(self, artifact):
        with pytest.raises(ValueError, match="exactly one"):
            parse_query_line("?\tr0\t?", artifact)
        with pytest.raises(ValueError, match="exactly one"):
            parse_query_line("1\t0\t2", artifact)
        with pytest.raises(ValueError, match="3 tab-separated"):
            parse_query_line("1\t0", artifact)

    def test_read_query_file(self, artifact, tmp_path):
        source = tmp_path / "queries.tsv"
        source.write_text("# comment\n\n3\t0\t?\n?\t1\t5\n", encoding="utf-8")
        requests = read_query_file(source, artifact, top_k=4)
        assert [request.direction for request in requests] == ["tail", "head"]
        assert all(request.top_k == 4 for request in requests)

    def test_read_query_file_names_bad_line(self, artifact, tmp_path):
        source = tmp_path / "bad.tsv"
        source.write_text("3\t0\t?\nbogus line\n", encoding="utf-8")
        with pytest.raises(ValueError, match="bad.tsv:2"):
            read_query_file(source, artifact)

    def test_answer_and_format(self, engine, artifact):
        requests = [
            QueryRequest(direction="tail", entity=0, relation=0, top_k=3),
            QueryRequest(direction="head", entity=1, relation=1, top_k=3),
        ]
        responses = answer_queries(engine, requests, artifact)
        assert len(responses) == 2
        assert all(len(response.predictions) == 3 for response in responses)
        assert all(response.latency_ms >= 0 for response in responses)
        rows = format_response_rows(responses, artifact)
        assert rows[0].startswith("direction\t")
        assert len(rows) == 1 + 6  # header + 2 queries x top-3

    def test_mixed_top_k_answered_in_order(self, engine, artifact):
        requests = [
            QueryRequest(direction="tail", entity=0, relation=0, top_k=2),
            QueryRequest(direction="tail", entity=0, relation=0, top_k=5),
        ]
        responses = answer_queries(engine, requests, artifact)
        assert [len(response.predictions) for response in responses] == [2, 5]


class TestHTTPService:
    @pytest.fixture()
    def server(self, engine, artifact):
        server = create_server(engine, artifact, host="127.0.0.1", port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        yield server
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)

    @staticmethod
    def _get(server, path):
        url = f"http://127.0.0.1:{server.server_address[1]}{path}"
        with urllib.request.urlopen(url, timeout=10) as response:
            return response.status, json.loads(response.read())

    @staticmethod
    def _post(server, path, payload):
        url = f"http://127.0.0.1:{server.server_address[1]}{path}"
        request = urllib.request.Request(
            url,
            data=json.dumps(payload).encode("utf-8"),
            headers={"Content-Type": "application/json"},
        )
        with urllib.request.urlopen(request, timeout=10) as response:
            return response.status, json.loads(response.read())

    def test_healthz(self, server, artifact):
        status, payload = self._get(server, "/healthz")
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["artifact"]["scoring_function"] == artifact.scoring_function.name

    def test_single_query(self, server):
        status, payload = self._post(
            server, "/query", {"direction": "tail", "entity": 0, "relation": 0, "top_k": 3}
        )
        assert status == 200
        assert len(payload["predictions"]) == 3
        scores = [prediction["score"] for prediction in payload["predictions"]]
        assert scores == sorted(scores, reverse=True)

    def test_batch_query_with_labels(self, server, artifact):
        label = artifact.relation_names[0]
        status, payload = self._post(
            server,
            "/query",
            {
                "queries": [
                    {"direction": "tail", "entity": 0, "relation": label, "top_k": 2},
                    {"direction": "head", "entity": 1, "relation": 0, "top_k": 2},
                ]
            },
        )
        assert status == 200
        assert len(payload["responses"]) == 2
        assert all(len(response["predictions"]) == 2 for response in payload["responses"])

    def test_stats_counts_requests(self, server):
        self._post(server, "/query", {"direction": "tail", "entity": 0, "relation": 0})
        status, payload = self._get(server, "/stats")
        assert status == 200
        assert payload["http_requests"] >= 1
        assert payload["queries_served"] >= 1
        assert "timings" in payload

    def test_bad_query_returns_400(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            self._post(server, "/query", {"direction": "tail"})
        assert excinfo.value.code == 400
        assert "missing required fields" in json.loads(excinfo.value.read())["error"]

    def test_unknown_path_returns_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            self._get(server, "/nope")
        assert excinfo.value.code == 404

    def test_uptime_is_monotonic_and_non_negative(self, server):
        _, first = self._get(server, "/stats")
        _, second = self._get(server, "/stats")
        assert first["uptime_s"] >= 0.0
        assert second["uptime_s"] >= first["uptime_s"]


class TestMetricsEndpoint:
    @pytest.fixture()
    def server(self, artifact):
        registry = MetricsRegistry()
        engine = InferenceEngine.from_artifact(artifact, registry=registry)
        server = create_server(
            engine, artifact, host="127.0.0.1", port=0, worker_id=3, registry=registry
        )
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        yield server
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)

    @staticmethod
    def _scrape(server):
        url = f"http://127.0.0.1:{server.server_address[1]}/metrics"
        with urllib.request.urlopen(url, timeout=10) as response:
            return (
                response.status,
                response.headers.get("Content-Type"),
                response.read().decode("utf-8"),
            )

    @staticmethod
    def _query(server):
        url = f"http://127.0.0.1:{server.server_address[1]}/query"
        request = urllib.request.Request(
            url,
            data=json.dumps(
                {"direction": "tail", "entity": 0, "relation": 0, "top_k": 2}
            ).encode("utf-8"),
            headers={"Content-Type": "application/json"},
        )
        with urllib.request.urlopen(request, timeout=10) as response:
            response.read()

    def test_metrics_parse_and_carry_worker_series(self, server):
        self._query(server)
        status, content_type, text = self._scrape(server)
        assert status == 200
        assert content_type == PROMETHEUS_CONTENT_TYPE
        parsed = parse_prometheus(text)  # raises on any malformed line
        samples = parsed["samples"]
        assert samples[("repro_http_requests_total", (("worker_id", "3"),))] >= 2.0
        assert samples[("repro_serving_queries_total", ())] >= 1.0
        assert samples[("repro_worker_uptime_seconds", (("worker_id", "3"),))] >= 0.0
        info_labels = dict(
            next(
                labels
                for name, labels in samples
                if name == "repro_worker_info"
            )
        )
        assert info_labels["worker_id"] == "3"
        assert int(info_labels["pid"]) > 0
        assert parsed["types"]["repro_http_requests_total"] == "counter"

    def test_request_counter_monotone_across_scrapes(self, server):
        self._query(server)
        _, _, first = self._scrape(server)
        self._query(server)
        _, _, second = self._scrape(server)
        key = ("repro_http_requests_total", (("worker_id", "3"),))
        before = parse_prometheus(first)["samples"][key]
        after = parse_prometheus(second)["samples"][key]
        assert after > before

    def test_phase_histogram_has_bucket_invariants(self, server):
        self._query(server)
        _, _, text = self._scrape(server)
        parsed = parse_prometheus(text)
        phases = {
            dict(labels).get("phase")
            for name, labels in parsed["samples"]
            if name == "repro_phase_seconds_bucket"
        }
        assert "score" in phases
        base = (("phase", "score"),)
        count = parsed["samples"][("repro_phase_seconds_count", base)]
        inf_bucket = parsed["samples"][
            ("repro_phase_seconds_bucket", tuple(sorted(base + (("le", "+Inf"),))))
        ]
        assert inf_bucket == count >= 1.0
