"""Property-based sparse-vs-reference parity (hypothesis).

For random scoring families, batch shapes and duplicate-heavy batches, the
sparse engine must produce the same batch loss, the same accumulated
gradients and — after one optimizer step — the same parameters as the
reference loop at ``atol=1e-10``.  Duplicate triples within a batch are the
scatter-add collision case: deduplicated touched-row indices must still
accumulate every positive's contribution.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings

pytestmark = pytest.mark.property  # tier 2: run with --runslow
from hypothesis import strategies as st

from repro.datasets.knowledge_graph import KnowledgeGraph
from repro.kge.trainer import Trainer
from repro.utils.config import TrainingConfig

from test_train_engine import SCORING_FACTORIES

_settings = settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])

FAMILIES = sorted(SCORING_FACTORIES)


@st.composite
def batch_problems(draw):
    """(family, graph sizes, a batch of triples, loss/optimizer knobs).

    Batches are drawn with replacement from a small triple pool, so
    duplicate triples — and therefore duplicate touched indices — are common
    rather than adversarial corner cases.
    """
    family = draw(st.sampled_from(FAMILIES))
    num_entities = draw(st.integers(10, 40))
    num_relations = draw(st.integers(2, 6))
    pool_size = draw(st.integers(4, 30))
    seed = draw(st.integers(0, 2**16))
    rng = np.random.default_rng(seed)
    pool = np.stack(
        [
            rng.integers(0, num_entities, pool_size),
            rng.integers(0, num_relations, pool_size),
            rng.integers(0, num_entities, pool_size),
        ],
        axis=1,
    ).astype(np.int64)
    batch_size = draw(st.integers(1, 48))
    batch = pool[draw(st.lists(st.integers(0, pool_size - 1), min_size=batch_size,
                               max_size=batch_size))]
    loss = draw(st.sampled_from(["logistic", "hinge"]))
    optimizer = draw(st.sampled_from(["sgd", "adagrad"]))
    negative_samples = draw(st.integers(1, min(6, num_entities - 1)))
    return family, num_entities, num_relations, batch, loss, optimizer, negative_samples, seed


def _make_trainer(engine, family, num_entities, num_relations, loss, optimizer,
                  negative_samples, seed):
    config = TrainingConfig(
        dimension=8,
        batch_size=64,
        learning_rate=0.3,
        l2_penalty=0.0,
        loss=loss,
        optimizer=optimizer,
        negative_samples=negative_samples,
        seed=seed,
        train_engine=engine,
    )
    trainer = Trainer(SCORING_FACTORIES[family](), config)
    graph_like = KnowledgeGraph(
        num_entities=num_entities,
        num_relations=num_relations,
        train=np.zeros((1, 3), dtype=np.int64),
        valid=np.zeros((0, 3), dtype=np.int64),
        test=np.zeros((0, 3), dtype=np.int64),
    )
    params = trainer.initialize(graph_like)
    return trainer, params


class TestSparseParityProperties:
    @_settings
    @given(batch_problems())
    def test_gradients_match_reference(self, problem):
        family, n_e, n_r, batch, loss, optimizer, negatives, seed = problem
        outcomes = {}
        for engine in ("reference", "sparse"):
            trainer, params = _make_trainer(
                engine, family, n_e, n_r, loss, optimizer, negatives, seed
            )
            grads = trainer.scoring_function.zero_grads(params)
            value = trainer.engine.accumulate_batch(trainer, params, batch, grads)
            outcomes[engine] = (value, grads)
        reference_value, reference_grads = outcomes["reference"]
        sparse_value, sparse_grads = outcomes["sparse"]
        assert sparse_value == pytest.approx(reference_value, abs=1e-10)
        assert set(sparse_grads) == set(reference_grads)
        for key in reference_grads:
            np.testing.assert_allclose(
                sparse_grads[key], reference_grads[key], rtol=0, atol=1e-10
            )

    @_settings
    @given(batch_problems())
    def test_post_step_parameters_match_reference(self, problem):
        family, n_e, n_r, batch, loss, optimizer, negatives, seed = problem
        outcomes = {}
        for engine in ("reference", "sparse"):
            trainer, params = _make_trainer(
                engine, family, n_e, n_r, loss, optimizer, negatives, seed
            )
            trainer.train_step(params, batch)
            # A second step exercises accumulated optimizer state too.
            trainer.train_step(params, batch)
            outcomes[engine] = params
        for key in outcomes["reference"]:
            np.testing.assert_allclose(
                outcomes["sparse"][key], outcomes["reference"][key], rtol=0, atol=1e-10
            )
