"""Tests for artifact generations and online hot-swap (single server + fleet).

The hot-swap parity oracle: after publishing a new generation and
reloading, the running server's answers must be bit-identical to a
cold-started engine on the new artifact — and not a single request may
fail while the swap happens (the engine mount flips atomically).
"""

from __future__ import annotations

import json
import os
import threading
import time
from http.client import HTTPConnection
from pathlib import Path

import numpy as np
import pytest

from repro.kge import train_model
from repro.serving import (
    ARTIFACT_SCHEMA_VERSION,
    ArtifactError,
    EngineReloader,
    FILTER_INDEX_DIRNAME,
    InferenceEngine,
    ServingFleet,
    create_server,
    export_artifact,
    known_positive_index,
    load_artifact,
    load_filter_index,
    save_filter_index,
    wait_until_healthy,
)
from repro.utils.config import TrainingConfig
from repro.utils.serialization import from_json_file

HOST = "127.0.0.1"

#: Consecutive fresh /stats polls before a fleet counts as converged
#: (each poll lands on an arbitrary worker).
FRESH_CONFIRMATIONS = 6


def http_json(port, method, path, payload=None):
    connection = HTTPConnection(HOST, port, timeout=10.0)
    try:
        body = json.dumps(payload).encode("utf-8") if payload is not None else None
        headers = {"Content-Type": "application/json"} if body else {}
        connection.request(method, path, body=body, headers=headers)
        response = connection.getresponse()
        return response.status, json.loads(response.read())
    finally:
        connection.close()


def http_text(port, path):
    connection = HTTPConnection(HOST, port, timeout=10.0)
    try:
        connection.request("GET", path)
        response = connection.getresponse()
        return response.status, response.read().decode("utf-8")
    finally:
        connection.close()


@pytest.fixture(scope="module")
def generations(tiny_graph, tmp_path_factory):
    """Two exported artifact generations of distinct trained models."""
    base = tmp_path_factory.mktemp("live_serving")
    artifacts = {}
    for generation, seed in ((1, 0), (2, 1)):
        config = TrainingConfig(
            dimension=8, epochs=2, batch_size=64, learning_rate=0.5, seed=seed
        )
        model = train_model(tiny_graph, "complex", config)
        artifacts[generation] = export_artifact(
            model,
            base / f"gen-{generation:05d}",
            graph=tiny_graph,
            generation=generation,
        )
    return base, artifacts


@pytest.fixture()
def sample_queries(tiny_graph):
    rng = np.random.default_rng(11)
    return [
        ("tail" if rng.random() < 0.5 else "head",
         int(rng.integers(tiny_graph.num_entities)),
         int(rng.integers(tiny_graph.num_relations)))
        for _ in range(60)
    ]


class TestArtifactGenerations:
    def test_generation_round_trips(self, generations):
        _, artifacts = generations
        for generation, directory in artifacts.items():
            manifest = from_json_file(directory / "manifest.json")
            assert manifest["generation"] == generation
            artifact = load_artifact(directory)
            assert artifact.generation == generation
            assert artifact.describe()["generation"] == generation

    def test_negative_generation_rejected(self, tiny_graph, tmp_path):
        config = TrainingConfig(dimension=8, epochs=1, seed=0)
        model = train_model(tiny_graph, "complex", config)
        with pytest.raises(ArtifactError, match="generation"):
            export_artifact(model, tmp_path / "bad", generation=-1)

    def test_v2_manifest_loads_with_generation_zero(self, generations, tmp_path):
        _, artifacts = generations
        source = artifacts[1]
        target = tmp_path / "v2"
        target.mkdir()
        for item in source.iterdir():
            if item.is_dir():
                (target / item.name).mkdir()
                for nested in item.iterdir():
                    (target / item.name / nested.name).write_bytes(nested.read_bytes())
            else:
                (target / item.name).write_bytes(item.read_bytes())
        manifest = json.loads((target / "manifest.json").read_text())
        manifest.pop("generation")
        manifest["schema_version"] = 2
        (target / "manifest.json").write_text(json.dumps(manifest))
        artifact = load_artifact(target)
        assert artifact.generation == 0
        assert artifact.schema_version == 2

    def test_invalid_generation_value_rejected(self, generations, tmp_path):
        _, artifacts = generations
        manifest_path = artifacts[1] / "manifest.json"
        original = manifest_path.read_text()
        manifest = json.loads(original)
        manifest["generation"] = "two"
        manifest_path.write_text(json.dumps(manifest))
        try:
            with pytest.raises(ArtifactError, match="generation"):
                load_artifact(artifacts[1])
        finally:
            manifest_path.write_text(original)

    def test_current_schema_version_is_three(self):
        assert ARTIFACT_SCHEMA_VERSION == 3


class TestFilterIndexErrorNamesArtifact:
    def test_missing_meta_names_artifact_directory(self, tiny_graph, tmp_path):
        artifact_dir = tmp_path / "artifact"
        index_dir = artifact_dir / FILTER_INDEX_DIRNAME
        index_dir.mkdir(parents=True)
        with pytest.raises(ValueError, match=r"artifact directory .*artifact"):
            load_filter_index(index_dir)

    def test_missing_array_names_artifact_directory(self, tiny_graph, tmp_path):
        artifact_dir = tmp_path / "artifact"
        index_dir = save_filter_index(
            known_positive_index(tiny_graph), artifact_dir / FILTER_INDEX_DIRNAME
        )
        (index_dir / "tails_codes.npy").unlink()
        with pytest.raises(
            ValueError, match=r"artifact directory .*artifact.* is missing tails_codes.npy"
        ):
            load_filter_index(index_dir)

    def test_other_directories_keep_the_plain_error(self, tmp_path):
        plain = tmp_path / "not-an-index"
        plain.mkdir()
        with pytest.raises(ValueError, match="filter-index directory") as info:
            load_filter_index(plain)
        assert "artifact directory" not in str(info.value)


class TestSingleServerReload:
    def test_reload_swaps_generation_with_zero_downtime(
        self, generations, sample_queries
    ):
        _, artifacts = generations
        reloader = EngineReloader(artifact_dir=artifacts[1], result_cache_size=0)
        artifact, engine, batcher = reloader.build()
        server = create_server(
            engine, artifact, host=HOST, port=0, batcher=batcher, reloader=reloader
        )
        port = server.server_address[1]
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        errors = []
        stop = threading.Event()

        def hammer():
            payload = {
                "queries": [
                    {"direction": d, "entity": e, "relation": r, "top_k": 5}
                    for d, e, r in sample_queries[:16]
                ]
            }
            while not stop.is_set():
                try:
                    status, _ = http_json(port, "POST", "/query", payload)
                except Exception as error:  # noqa: BLE001
                    errors.append(repr(error))
                    continue
                if status != 200:
                    errors.append(f"HTTP {status}")

        hammer_thread = threading.Thread(target=hammer, daemon=True)
        try:
            status, stats = http_json(port, "GET", "/stats")
            assert status == 200
            assert stats["artifact"]["generation"] == 1
            assert stats["artifact"]["schema_version"] == ARTIFACT_SCHEMA_VERSION
            assert stats["reloads"] == 0

            hammer_thread.start()
            time.sleep(0.05)
            status, reloaded = http_json(
                port, "POST", "/reload", {"artifact": str(artifacts[2])}
            )
            assert status == 200
            assert reloaded["generation"] == 2
            time.sleep(0.05)
        finally:
            stop.set()
            hammer_thread.join(timeout=30.0)
        assert errors == []

        status, stats = http_json(port, "GET", "/stats")
        assert stats["artifact"]["generation"] == 2
        assert stats["reloads"] == 1

        # Bit-parity: the reloaded server vs a cold engine on generation 2.
        oracle = InferenceEngine.from_artifact(
            load_artifact(artifacts[2]), result_cache_size=0
        )
        expected = oracle.query_batch(sample_queries, top_k=5)
        status, decoded = http_json(
            port,
            "POST",
            "/query",
            {
                "queries": [
                    {"direction": d, "entity": e, "relation": r, "top_k": 5}
                    for d, e, r in sample_queries
                ]
            },
        )
        assert status == 200
        got = [
            [(p["entity"], p["score"]) for p in response["predictions"]]
            for response in decoded["responses"]
        ]
        assert got == [[(e, s) for e, s in answer] for answer in expected]
        server.shutdown()
        server.server_close()

    def test_reload_failure_keeps_old_generation(self, generations, tmp_path):
        _, artifacts = generations
        reloader = EngineReloader(artifact_dir=artifacts[1])
        artifact, engine, batcher = reloader.build()
        server = create_server(engine, artifact, host=HOST, port=0, reloader=reloader)
        port = server.server_address[1]
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            status, decoded = http_json(
                port, "POST", "/reload", {"artifact": str(tmp_path / "missing")}
            )
            assert status == 500
            assert "still serving the old generation" in decoded["error"]
            status, stats = http_json(port, "GET", "/stats")
            assert stats["artifact"]["generation"] == 1
            assert stats["reloads"] == 0
        finally:
            server.shutdown()
            server.server_close()

    def test_reload_without_reloader_is_descriptive(self, generations):
        _, artifacts = generations
        artifact = load_artifact(artifacts[1])
        engine = InferenceEngine.from_artifact(artifact)
        server = create_server(engine, artifact, host=HOST, port=0)
        port = server.server_address[1]
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            status, decoded = http_json(port, "POST", "/reload")
            assert status == 400
            assert "EngineReloader" in decoded["error"]
            with pytest.raises(RuntimeError, match="EngineReloader"):
                server.reload()
        finally:
            server.shutdown()
            server.server_close()


def flip_symlink(link: Path, target: Path) -> None:
    staging = link.parent / f".{link.name}.tmp"
    if staging.is_symlink() or staging.exists():
        staging.unlink()
    staging.symlink_to(target)
    os.replace(staging, link)


def wait_for_generation(port, generation, timeout_s=30.0):
    deadline = time.monotonic() + timeout_s
    streak = 0
    while time.monotonic() < deadline:
        status, stats = http_json(port, "GET", "/stats")
        if status == 200 and stats.get("artifact", {}).get("generation") == generation:
            streak += 1
            if streak >= FRESH_CONFIRMATIONS:
                return
        else:
            streak = 0
        time.sleep(0.02)
    raise TimeoutError(f"fleet never converged on generation {generation}")


class TestFleetHotSwap:
    def test_sighup_swaps_every_worker_with_zero_drops(
        self, generations, sample_queries, tmp_path
    ):
        base, artifacts = generations
        current = tmp_path / "current"
        current.symlink_to(artifacts[1])
        fleet = ServingFleet(
            current,
            host=HOST,
            port=0,
            workers=2,
            micro_batch_window_ms=0.0,
            result_cache_size=0,
        )
        port = fleet.start()
        errors = []
        stop = threading.Event()

        def hammer():
            payload = {
                "queries": [
                    {"direction": d, "entity": e, "relation": r, "top_k": 5}
                    for d, e, r in sample_queries[:16]
                ]
            }
            while not stop.is_set():
                try:
                    status, _ = http_json(port, "POST", "/query", payload)
                except Exception as error:  # noqa: BLE001
                    errors.append(repr(error))
                    continue
                if status != 200:
                    errors.append(f"HTTP {status}")

        hammer_thread = threading.Thread(target=hammer, daemon=True)
        try:
            wait_until_healthy(HOST, port)
            wait_for_generation(port, 1)
            hammer_thread.start()
            time.sleep(0.1)

            flip_symlink(current, artifacts[2])
            fleet.signal_reload()
            wait_for_generation(port, 2)
            time.sleep(0.1)
            stop.set()
            hammer_thread.join(timeout=30.0)
            assert errors == []

            # Bit-parity against a cold engine on the new generation.
            oracle = InferenceEngine.from_artifact(
                load_artifact(artifacts[2]), result_cache_size=0
            )
            chunk = 20
            expected = []
            for start in range(0, len(sample_queries), chunk):
                expected.extend(
                    oracle.query_batch(sample_queries[start : start + chunk], top_k=5)
                )
            answers = []
            for start in range(0, len(sample_queries), chunk):
                payload = {
                    "queries": [
                        {"direction": d, "entity": e, "relation": r, "top_k": 5}
                        for d, e, r in sample_queries[start : start + chunk]
                    ]
                }
                status, decoded = http_json(port, "POST", "/query", payload)
                assert status == 200
                for response in decoded["responses"]:
                    answers.append(
                        [(p["entity"], p["score"]) for p in response["predictions"]]
                    )
            assert answers == [[(e, s) for e, s in answer] for answer in expected]

            # The hot-cache telemetry satellite: counters are exported on
            # /metrics, and the reload metrics moved with the swap.
            status, body = http_text(port, "/metrics")
            assert status == 200
            for needle in (
                "repro_serving_hot_cache_hits_total",
                "repro_serving_hot_cache_misses_total",
                "repro_serving_hot_cache_admissions_total",
                "repro_serving_hot_cache_rejections_total",
                "repro_serving_hot_cache_evictions_total",
                "repro_live_generation",
                "repro_live_reloads_total",
            ):
                assert needle in body, needle
        finally:
            stop.set()
            fleet.terminate()
            exit_status = fleet.wait()
            fleet.close()
        assert exit_status == 0
