"""Tests for warm-start delta fine-tuning (repro.live.finetune).

The headline contract is *bitwise*: rows outside the delta-touched
entity/relation sets must come back byte-identical to the input params —
the sparse engine only writes touched rows and the pooled sampler keeps
every corruption (hence every gradient) inside the touched pool.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.kge import train_model
from repro.live import (
    FinetuneReport,
    PooledNegativeSampler,
    delta_touched,
    finetune_delta,
    warm_start_entities,
)
from repro.utils.config import ConfigError, TrainingConfig


@pytest.fixture(scope="module")
def pairwise_config():
    return TrainingConfig(
        dimension=8,
        epochs=3,
        batch_size=64,
        learning_rate=0.3,
        l2_penalty=1e-4,
        loss="logistic",
        negative_samples=4,
        seed=0,
    )


@pytest.fixture(scope="module")
def trained(tiny_graph, pairwise_config):
    return train_model(tiny_graph, "complex", pairwise_config)


@pytest.fixture(scope="module")
def delta(tiny_graph):
    """A small append batch: known entities plus one brand-new entity."""
    known = {tuple(row) for row in tiny_graph.train}
    rng = np.random.default_rng(42)
    rows = []
    while len(rows) < 5:
        h = int(rng.integers(tiny_graph.num_entities))
        r = int(rng.integers(tiny_graph.num_relations))
        t = int(rng.integers(tiny_graph.num_entities))
        if h != t and (h, r, t) not in known:
            known.add((h, r, t))
            rows.append((h, r, t))
    rows.append((tiny_graph.num_entities, 0, rows[0][0]))
    return np.asarray(rows, dtype=np.int64)


class TestWarmStart:
    def test_neighborhood_mean_initialization(self):
        table = np.arange(12, dtype=np.float64).reshape(4, 3)
        params = {"entities": table, "relations": np.ones((2, 3))}
        # New entity 4 connects to trained 0 and 2 under relation 0, and to
        # trained 1 under relation 1: mean(mean(e0, e2), e1).
        delta = np.asarray([[4, 0, 0], [2, 0, 4], [4, 1, 1]], dtype=np.int64)
        grown = warm_start_entities(params, delta, num_entities=5)
        expected = ((table[0] + table[2]) / 2 + table[1]) / 2
        np.testing.assert_array_equal(grown["entities"][4], expected)
        # Old rows byte-identical, and the output is a fresh writable copy.
        assert grown["entities"][:4].tobytes() == table.tobytes()
        assert grown["entities"] is not table
        assert grown["entities"].flags.writeable

    def test_isolated_new_entity_falls_back_to_column_mean(self):
        table = np.arange(12, dtype=np.float64).reshape(4, 3)
        params = {"entities": table}
        # Entities 4 and 5 only reference each other: no trained neighbor.
        delta = np.asarray([[4, 0, 5]], dtype=np.int64)
        grown = warm_start_entities(params, delta, num_entities=6)
        np.testing.assert_array_equal(grown["entities"][4], table.mean(axis=0))
        np.testing.assert_array_equal(grown["entities"][5], table.mean(axis=0))

    def test_shrinking_rejected(self):
        params = {"entities": np.zeros((4, 3))}
        with pytest.raises(ValueError, match="below the current entity table"):
            warm_start_entities(params, np.zeros((1, 3), dtype=np.int64), 2)


class TestPooledSampler:
    def test_samples_stay_in_pool(self):
        pool = np.asarray([3, 7, 11, 20])
        sampler = PooledNegativeSampler(pool, num_negatives=6, rng=0)
        positives = np.asarray([3, 7, 20, 11, 3])
        negatives = sampler.sample(positives)
        assert negatives.shape == (5, 6)
        assert np.isin(negatives, pool).all()
        assert (negatives != positives[:, None]).all()

    def test_tiny_pool_rejected(self):
        with pytest.raises(ValueError, match="at least two"):
            PooledNegativeSampler(np.asarray([5]), num_negatives=2)


class TestFinetuneDelta:
    def test_untouched_rows_bitwise_unchanged(self, trained, pairwise_config, delta):
        before = {key: np.array(value) for key, value in trained.params.items()}
        params, history, report = finetune_delta(
            trained.scoring_function, trained.params, pairwise_config, delta
        )
        touched_entities, touched_relations = delta_touched(delta)
        entity_mask = np.ones(params["entities"].shape[0], dtype=bool)
        entity_mask[touched_entities] = False
        relation_mask = np.ones(params["relations"].shape[0], dtype=bool)
        relation_mask[touched_relations] = False
        old_count = before["entities"].shape[0]
        assert (
            params["entities"][: old_count][entity_mask[:old_count]].tobytes()
            == before["entities"][entity_mask[:old_count]].tobytes()
        )
        assert (
            params["relations"][relation_mask].tobytes()
            == before["relations"][relation_mask].tobytes()
        )
        # ...and the touched rows did actually train.
        assert not np.array_equal(
            params["entities"][touched_entities[touched_entities < old_count]],
            before["entities"][touched_entities[touched_entities < old_count]],
        )
        # Inputs are never mutated.
        for key in before:
            assert trained.params[key].tobytes() == before[key].tobytes()
        assert isinstance(report, FinetuneReport)
        assert report.delta_triples == delta.shape[0]
        assert report.new_entities == 1
        assert report.epochs == pairwise_config.epochs
        assert len(history.losses) == pairwise_config.epochs

    def test_deterministic(self, trained, pairwise_config, delta):
        first, _, _ = finetune_delta(
            trained.scoring_function, trained.params, pairwise_config, delta
        )
        second, _, _ = finetune_delta(
            trained.scoring_function, trained.params, pairwise_config, delta
        )
        for key in first:
            assert first[key].tobytes() == second[key].tobytes(), key

    def test_multiclass_loss_rejected(self, trained, delta):
        config = TrainingConfig(dimension=8, epochs=1, loss="multiclass", seed=0)
        with pytest.raises(ConfigError, match="logistic"):
            finetune_delta(trained.scoring_function, trained.params, config, delta)

    def test_relation_growth_rejected(self, trained, pairwise_config, tiny_graph):
        bad = np.asarray([[0, tiny_graph.num_relations, 1]], dtype=np.int64)
        with pytest.raises(ValueError, match="relation growth requires a retrain"):
            finetune_delta(trained.scoring_function, trained.params, pairwise_config, bad)

    def test_empty_delta_rejected(self, trained, pairwise_config):
        with pytest.raises(ValueError, match="non-empty"):
            finetune_delta(
                trained.scoring_function,
                trained.params,
                pairwise_config,
                np.zeros((0, 3), dtype=np.int64),
            )
