"""Parity tests: vectorized filtered ranking vs the scalar reference path."""

import numpy as np
import pytest

from repro.datasets.knowledge_graph import FilterIndex
from repro.kge.evaluation import (
    _filtered_rank,
    compute_ranks,
    compute_ranks_reference,
    evaluate_link_prediction,
    filtered_ranks_batch,
    relation_threshold_lookup,
)
from repro.kge.scoring.bilinear import BlockScoringFunction
from repro.kge.scoring.blocks import classical_structure
from repro.kge.trainer import Trainer
from repro.utils.config import TrainingConfig


def _scalar_ranks(scores, targets, known_lists):
    """Row-by-row oracle built from the original scalar implementation."""
    return np.asarray(
        [
            _filtered_rank(scores[row], int(targets[row]), known_lists[row])
            for row in range(scores.shape[0])
        ],
        dtype=np.float64,
    )


def _flatten_known(known_lists):
    rows, cols = [], []
    for row, known in enumerate(known_lists):
        for entity in known:
            rows.append(row)
            cols.append(entity)
    return np.asarray(rows, dtype=np.int64), np.asarray(cols, dtype=np.int64)


class TestFilteredRanksBatch:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_matches_scalar_on_random_matrices_with_ties(self, seed):
        gen = np.random.default_rng(seed)
        batch, num_entities = 17, 40
        # Low-cardinality integer scores force plenty of exact ties.
        scores = gen.integers(0, 6, size=(batch, num_entities)).astype(np.float64)
        targets = gen.integers(0, num_entities, size=batch)
        known_lists = []
        for row in range(batch):
            known = set(gen.choice(num_entities, size=int(gen.integers(0, 12)), replace=False))
            known.add(int(targets[row]))  # the true answer is always known
            known_lists.append(sorted(known))
        expected = _scalar_ranks(scores, targets, known_lists)
        actual = filtered_ranks_batch(scores, targets, *_flatten_known(known_lists))
        np.testing.assert_array_equal(actual, expected)

    def test_all_tied_scores(self):
        scores = np.ones((3, 10))
        targets = np.asarray([0, 4, 9])
        expected = _scalar_ranks(scores, targets, [[], [], []])
        actual = filtered_ranks_batch(scores, targets)
        np.testing.assert_array_equal(actual, expected)
        # Every entity ties: mean rank of a 10-way tie is (1 + 10) / 2.
        assert actual.tolist() == [5.5, 5.5, 5.5]

    def test_target_never_filtered_out(self):
        scores = np.asarray([[3.0, 2.0, 1.0, 0.0]])
        targets = np.asarray([1])
        rows, cols = np.asarray([0, 0]), np.asarray([0, 1])  # known includes the target
        actual = filtered_ranks_batch(scores, targets, rows, cols)
        assert actual.tolist() == [1.0]  # best score was masked, target promoted

    def test_unfiltered_matches_scalar(self):
        gen = np.random.default_rng(7)
        scores = gen.normal(size=(5, 12))
        targets = gen.integers(0, 12, size=5)
        expected = _scalar_ranks(scores, targets, [[] for _ in range(5)])
        np.testing.assert_array_equal(filtered_ranks_batch(scores, targets), expected)


class TestFilterIndex:
    def test_matches_dict_of_sets(self, tiny_graph):
        index = tiny_graph.filter_index()
        known_tails = tiny_graph.known_tails()
        triples = tiny_graph.test
        rows, cols = index.known_tail_pairs(triples[:, 0], triples[:, 1])
        for row, (h, r, _t) in enumerate(triples):
            expected = known_tails.get((int(h), int(r)), set())
            actual = set(cols[rows == row].tolist())
            assert actual == expected

        known_heads = tiny_graph.known_heads()
        rows, cols = index.known_head_pairs(triples[:, 2], triples[:, 1])
        for row, (_h, r, t) in enumerate(triples):
            expected = known_heads.get((int(r), int(t)), set())
            actual = set(cols[rows == row].tolist())
            assert actual == expected

    def test_memoized_per_graph(self, tiny_graph):
        assert tiny_graph.filter_index() is tiny_graph.filter_index()

    def test_unknown_queries_contribute_no_pairs(self, micro_graph):
        index = micro_graph.filter_index()
        # Relation 1 never links entity 7 as head.
        rows, cols = index.known_tail_pairs(np.asarray([7]), np.asarray([1]))
        assert rows.size == 0 and cols.size == 0


@pytest.fixture(scope="module")
def trained_model(tiny_graph):
    scoring_function = BlockScoringFunction(classical_structure("simple"))
    config = TrainingConfig(dimension=8, epochs=3, batch_size=64, learning_rate=0.5, seed=0)
    params, _history = Trainer(scoring_function, config).fit(tiny_graph)
    return scoring_function, params


class TestComputeRanksParity:
    @pytest.mark.parametrize("split", ["valid", "test"])
    @pytest.mark.parametrize("filtered", [True, False])
    def test_vectorized_matches_reference(self, tiny_graph, trained_model, split, filtered):
        scoring_function, params = trained_model
        vectorized = compute_ranks(
            scoring_function, params, tiny_graph, split=split, filtered=filtered
        )
        reference = compute_ranks_reference(
            scoring_function, params, tiny_graph, split=split, filtered=filtered
        )
        np.testing.assert_array_equal(vectorized, reference)

    def test_batch_size_does_not_change_ranks(self, tiny_graph, trained_model):
        scoring_function, params = trained_model
        small = compute_ranks(scoring_function, params, tiny_graph, batch_size=3)
        large = compute_ranks(scoring_function, params, tiny_graph, batch_size=1024)
        np.testing.assert_array_equal(small, large)

    def test_evaluate_link_prediction_uses_vectorized_path(self, tiny_graph, trained_model):
        scoring_function, params = trained_model
        result = evaluate_link_prediction(scoring_function, params, tiny_graph, split="test")
        reference = compute_ranks_reference(scoring_function, params, tiny_graph, split="test")
        assert result.mrr == pytest.approx(float(np.mean(1.0 / reference)))
        assert result.num_queries == reference.size


class TestRelationThresholdLookup:
    def test_matches_dict_lookup(self):
        gen = np.random.default_rng(5)
        thresholds = {2: 0.5, 7: -1.0, 11: 3.25}
        relations = gen.integers(0, 15, size=50)
        expected = np.asarray([thresholds.get(int(r), 9.0) for r in relations])
        actual = relation_threshold_lookup(relations, thresholds, 9.0)
        np.testing.assert_array_equal(actual, expected)

    def test_empty_thresholds_fall_back_to_default(self):
        actual = relation_threshold_lookup(np.asarray([0, 3, 9]), {}, 1.5)
        np.testing.assert_array_equal(actual, np.full(3, 1.5))
