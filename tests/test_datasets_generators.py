"""Tests for the synthetic knowledge-graph generators."""

import numpy as np
import pytest

from repro.datasets import GeneratorProfile, generate_knowledge_graph, generate_relation_triples
from repro.datasets.generators import _assign_clusters
from repro.datasets.statistics import RelationPattern, classify_relations, dataset_statistics


@pytest.fixture(scope="module")
def clusters():
    rng = np.random.default_rng(0)
    return _assign_clusters(100, 5, rng)


class TestClusterAssignment:
    def test_partition_covers_all_entities(self, clusters):
        combined = np.concatenate(clusters)
        assert sorted(combined.tolist()) == list(range(100))

    def test_cluster_count(self, clusters):
        assert len(clusters) == 5

    def test_roughly_equal_sizes(self, clusters):
        sizes = [len(c) for c in clusters]
        assert max(sizes) - min(sizes) <= 1


class TestRelationTriples:
    def test_symmetric_pairs_closed_under_reversal(self, clusters):
        pairs, _ = generate_relation_triples(RelationPattern.SYMMETRIC, clusters, 80, rng=0)
        pair_set = set(pairs)
        for h, t in pairs:
            assert (t, h) in pair_set

    def test_anti_symmetric_has_no_reversed_pairs(self, clusters):
        pairs, _ = generate_relation_triples(RelationPattern.ANTI_SYMMETRIC, clusters, 80, rng=0)
        pair_set = set(pairs)
        assert pairs, "generator produced no pairs"
        for h, t in pairs:
            assert (t, h) not in pair_set

    def test_anti_symmetric_heads_and_tails_overlap(self, clusters):
        pairs, _ = generate_relation_triples(RelationPattern.ANTI_SYMMETRIC, clusters, 80, rng=1)
        heads = {h for h, _ in pairs}
        tails = {t for _, t in pairs}
        assert heads & tails

    def test_general_heads_tails_disjoint(self, clusters):
        pairs, _ = generate_relation_triples(RelationPattern.GENERAL, clusters, 80, rng=0)
        heads = {h for h, _ in pairs}
        tails = {t for _, t in pairs}
        assert not heads & tails

    def test_inverse_returns_reversed_partner(self, clusters):
        forward, backward = generate_relation_triples(RelationPattern.INVERSE, clusters, 60, rng=0)
        assert backward is not None
        assert set(backward) == {(t, h) for h, t in forward}

    def test_non_inverse_has_no_partner(self, clusters):
        _, partner = generate_relation_triples(RelationPattern.GENERAL, clusters, 20, rng=0)
        assert partner is None

    def test_no_self_loops(self, clusters):
        for pattern in RelationPattern:
            pairs, _ = generate_relation_triples(pattern, clusters, 50, rng=2)
            assert all(h != t for h, t in pairs)

    def test_deterministic_given_seed(self, clusters):
        a, _ = generate_relation_triples(RelationPattern.GENERAL, clusters, 40, rng=9)
        b, _ = generate_relation_triples(RelationPattern.GENERAL, clusters, 40, rng=9)
        assert a == b


class TestGeneratorProfile:
    def test_relation_count_property(self):
        profile = GeneratorProfile(
            name="p",
            relation_counts={
                RelationPattern.SYMMETRIC: 2,
                RelationPattern.INVERSE: 3,  # rounded down to one pair
                RelationPattern.GENERAL: 1,
            },
        )
        assert profile.num_relations == 2 + 2 + 1

    def test_too_few_entities(self):
        with pytest.raises(ValueError):
            GeneratorProfile(name="p", num_entities=3, num_clusters=8)

    def test_zero_relations_rejected(self):
        with pytest.raises(ValueError):
            GeneratorProfile(name="p", relation_counts={})

    def test_bad_triples_per_relation(self):
        with pytest.raises(ValueError):
            GeneratorProfile(name="p", triples_per_relation=0)


class TestGenerateKnowledgeGraph:
    def test_generated_pattern_mix_matches_profile(self):
        profile = GeneratorProfile(
            name="mix",
            num_entities=120,
            num_clusters=6,
            relation_counts={
                RelationPattern.SYMMETRIC: 2,
                RelationPattern.ANTI_SYMMETRIC: 2,
                RelationPattern.INVERSE: 2,
                RelationPattern.GENERAL: 3,
            },
            triples_per_relation=120,
            seed=3,
        )
        graph = generate_knowledge_graph(profile)
        statistics = dataset_statistics(graph)
        assert statistics.count(RelationPattern.SYMMETRIC) == 2
        assert statistics.count(RelationPattern.ANTI_SYMMETRIC) == 2
        assert statistics.count(RelationPattern.INVERSE) == 2
        assert statistics.count(RelationPattern.GENERAL) == 3

    def test_relation_names_present(self, tiny_graph):
        assert tiny_graph.relation_names is not None
        assert len(tiny_graph.relation_names) == tiny_graph.num_relations

    def test_deterministic_given_profile_seed(self, tiny_profile):
        a = generate_knowledge_graph(tiny_profile)
        b = generate_knowledge_graph(tiny_profile)
        np.testing.assert_array_equal(a.train, b.train)

    def test_seed_override_changes_graph(self, tiny_profile):
        a = generate_knowledge_graph(tiny_profile)
        b = generate_knowledge_graph(tiny_profile, seed=999)
        assert not np.array_equal(a.train, b.train)

    def test_splits_nonempty(self, tiny_graph):
        assert tiny_graph.num_train > 0
        assert tiny_graph.num_valid > 0
        assert tiny_graph.num_test > 0

    def test_inverse_relations_adjacent(self):
        profile = GeneratorProfile(
            name="inv",
            num_entities=80,
            num_clusters=4,
            relation_counts={RelationPattern.INVERSE: 2, RelationPattern.GENERAL: 1},
            triples_per_relation=80,
            seed=11,
        )
        graph = generate_knowledge_graph(profile)
        _, inverse_pairs = classify_relations(graph.all_triples(), graph.num_relations)
        assert (0, 1) in inverse_pairs
