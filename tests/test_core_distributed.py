"""Tests for the socket-RPC work-queue backend (coordinator + workers).

The parity oracle: QueueBackend results must be bit-identical to
SerialBackend regardless of worker count, scheduling, or injected worker
deaths (per-candidate seeds make each evaluation order-independent).
"""

import socket
import threading
import time

import pytest

from repro.core.distributed import (
    QueueBackend,
    recv_frame,
    send_frame,
    serve_worker,
)
from repro.core.evaluator import CandidateEvaluator
from repro.core.execution import (
    EvaluationContext,
    EvaluationTask,
    ExecutionError,
    SerialBackend,
    derive_candidate_seed,
)
from repro.core.invariance import canonical_key
from repro.core.search_space import enumerate_f4_structures
from repro.core.store import EvaluationStore
from repro.utils.config import TrainingConfig


@pytest.fixture(scope="module")
def queue_training_config():
    return TrainingConfig(dimension=8, epochs=2, batch_size=64, learning_rate=0.5, seed=0)


def _tasks(count, base_seed=0):
    structures = list(enumerate_f4_structures())[:count]
    return [
        EvaluationTask(structure=s, seed=derive_candidate_seed(base_seed, canonical_key(s)))
        for s in structures
    ]


def _free_port():
    sock = socket.socket()
    sock.bind(("127.0.0.1", 0))
    port = sock.getsockname()[1]
    sock.close()
    return port


def _fast_queue(**overrides):
    options = dict(
        num_workers=2,
        heartbeat_interval=0.1,
        heartbeat_timeout=2.0,
        worker_timeout=20.0,
    )
    options.update(overrides)
    return QueueBackend(**options)


def _assert_bit_identical(serial, queued):
    assert len(serial) == len(queued)
    for a, b in zip(serial, queued):
        assert b is not None
        assert a.structure.key() == b.structure.key()
        assert a.validation_mrr == b.validation_mrr  # bitwise
        assert a.training_history.losses == b.training_history.losses


class TestFraming:
    def test_round_trip(self):
        left, right = socket.socketpair()
        try:
            send_frame(left, {"type": "hello", "payload": list(range(10))})
            message = recv_frame(right)
            assert message == {"type": "hello", "payload": list(range(10))}
        finally:
            left.close()
            right.close()

    def test_clean_eof_returns_none(self):
        left, right = socket.socketpair()
        left.close()
        try:
            assert recv_frame(right) is None
        finally:
            right.close()

    def test_oversized_frame_rejected(self):
        import struct

        left, right = socket.socketpair()
        try:
            left.sendall(struct.pack("!I", (1 << 30) + 1))
            with pytest.raises(ExecutionError, match="exceeds"):
                recv_frame(right)
        finally:
            left.close()
            right.close()


class TestConstructorValidation:
    def test_negative_workers(self):
        with pytest.raises(ValueError, match="num_workers"):
            QueueBackend(num_workers=-1)

    def test_zero_workers_allowed(self):
        assert QueueBackend(num_workers=0).num_workers == 0

    def test_bad_heartbeat(self):
        with pytest.raises(ValueError, match="heartbeat_interval"):
            QueueBackend(heartbeat_interval=0)
        with pytest.raises(ValueError, match="heartbeat_timeout"):
            QueueBackend(heartbeat_interval=1.0, heartbeat_timeout=0.5)

    def test_bad_worker_timeout(self):
        with pytest.raises(ValueError, match="worker_timeout"):
            QueueBackend(worker_timeout=0)

    def test_bad_max_retries(self):
        with pytest.raises(ValueError, match="max_retries"):
            QueueBackend(max_retries=-1)

    def test_connect_host_maps_bind_any_to_loopback(self):
        assert QueueBackend(host="0.0.0.0").connect_host == "127.0.0.1"
        assert QueueBackend(host="").connect_host == "127.0.0.1"
        assert QueueBackend(host="10.1.2.3").connect_host == "10.1.2.3"


class TestQueueParity:
    def test_bit_identical_to_serial(self, tiny_graph, queue_training_config):
        tasks = _tasks(5)
        context = EvaluationContext(tiny_graph, queue_training_config)
        serial = SerialBackend().run(context, tasks)
        queued = _fast_queue(num_workers=2).run(context, tasks)
        _assert_bit_identical(serial, queued)

    def test_empty_batch(self, tiny_graph, queue_training_config):
        context = EvaluationContext(tiny_graph, queue_training_config)
        assert _fast_queue().run(context, []) == []

    def test_on_result_streams_each_task_once(self, tiny_graph, queue_training_config):
        tasks = _tasks(4)
        context = EvaluationContext(tiny_graph, queue_training_config)
        seen = []
        outcomes = _fast_queue(num_workers=2).run(
            context, tasks, on_result=lambda index, outcome: seen.append(index)
        )
        assert sorted(seen) == [0, 1, 2, 3]  # arrival order varies, coverage doesn't
        assert len(outcomes) == 4

    def test_on_result_failure_propagates(self, tiny_graph, queue_training_config):
        tasks = _tasks(3)
        context = EvaluationContext(tiny_graph, queue_training_config)

        def explode(index, outcome):
            raise ValueError("checkpoint write failed")

        with pytest.raises(ValueError, match="checkpoint write failed"):
            _fast_queue(num_workers=2).run(context, tasks, on_result=explode)

    def test_evaluate_many_with_store_checkpoints(
        self, tiny_graph, queue_training_config, tmp_path
    ):
        structures = list(enumerate_f4_structures())[:4]
        store = EvaluationStore(tmp_path)
        evaluator = CandidateEvaluator(
            tiny_graph, queue_training_config, store=store, base_seed=0
        )
        results = evaluator.evaluate_many(structures, backend=_fast_queue(num_workers=2))
        assert len(results) == 4
        assert len(store) == 4  # every outcome checkpointed as it streamed in

        healthy = CandidateEvaluator(tiny_graph, queue_training_config, base_seed=0)
        expected = healthy.evaluate_many(structures)
        for a, b in zip(expected, results):
            assert a.validation_mrr == b.validation_mrr


class TestFaultTolerance:
    def test_parity_under_mid_batch_worker_kill(self, tiny_graph, queue_training_config):
        """A worker dies holding a task; the batch still matches serial."""
        tasks = _tasks(5)
        context = EvaluationContext(tiny_graph, queue_training_config)
        serial = SerialBackend().run(context, tasks)
        backend = _fast_queue(num_workers=2, _kill_after_tasks={0: 1})
        queued = backend.run(context, tasks)
        _assert_bit_identical(serial, queued)

    def test_worker_vanishing_before_accepting_is_tolerated(
        self, tiny_graph, queue_training_config
    ):
        """A connection that handshakes then drops must not stall the batch."""
        port = _free_port()
        tasks = _tasks(3)
        context = EvaluationContext(tiny_graph, queue_training_config)

        def flaky_worker():
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                try:
                    sock = socket.create_connection(("127.0.0.1", port), timeout=0.2)
                except OSError:
                    time.sleep(0.05)
                    continue
                try:
                    send_frame(sock, {"type": "hello", "pid": 0, "host": "fake"})
                    recv_frame(sock)  # welcome (context)
                finally:
                    sock.close()  # vanish without ever sending "ready"
                return

        thread = threading.Thread(target=flaky_worker, daemon=True)
        thread.start()
        backend = _fast_queue(num_workers=1, port=port)
        serial = SerialBackend().run(context, tasks)
        queued = backend.run(context, tasks)
        thread.join(timeout=5.0)
        _assert_bit_identical(serial, queued)

    def test_no_workers_times_out_with_candidate_names(
        self, tiny_graph, queue_training_config
    ):
        tasks = _tasks(2)
        context = EvaluationContext(tiny_graph, queue_training_config)
        backend = _fast_queue(num_workers=0, worker_timeout=0.5)
        start = time.monotonic()
        with pytest.raises(ExecutionError, match="no workers available") as excinfo:
            backend.run(context, tasks)
        assert time.monotonic() - start < 10.0  # fails, does not hang
        message = str(excinfo.value)
        for task in tasks:
            assert repr(task.structure.name or task.structure.blocks) in message

    def test_retry_exhaustion_names_the_candidate(self, tiny_graph, queue_training_config):
        """Every worker dies on its first task and retries are disabled."""
        tasks = _tasks(2)
        context = EvaluationContext(tiny_graph, queue_training_config)
        backend = _fast_queue(
            num_workers=1,
            max_retries=0,
            _kill_after_tasks={0: 0},
            worker_timeout=5.0,
        )
        with pytest.raises(ExecutionError, match="retry budget"):
            backend.run(context, tasks)

    def test_evaluate_many_recovers_via_serial_retry(
        self, tiny_graph, queue_training_config
    ):
        """Even an exhausted queue batch is retried serially by the evaluator."""
        structures = list(enumerate_f4_structures())[:2]
        healthy = CandidateEvaluator(tiny_graph, queue_training_config, base_seed=0)
        expected = healthy.evaluate_many(structures)

        evaluator = CandidateEvaluator(tiny_graph, queue_training_config, base_seed=0)
        flaky = _fast_queue(num_workers=2, _kill_after_tasks={0: 1, 1: 1})
        recovered = evaluator.evaluate_many(structures, backend=flaky)
        for a, b in zip(expected, recovered):
            assert a.validation_mrr == b.validation_mrr


class TestExternalWorkers:
    def test_external_worker_only_fleet(self, tiny_graph, queue_training_config):
        """num_workers=0 + a serve_worker loop, as a remote host would run."""
        port = _free_port()
        tasks = _tasks(3)
        context = EvaluationContext(tiny_graph, queue_training_config)
        completed = {}

        def external():
            completed["tasks"] = serve_worker(
                "127.0.0.1", port, reconnect_interval=0.05, max_idle=1.0
            )

        thread = threading.Thread(target=external, daemon=True)
        thread.start()
        backend = _fast_queue(num_workers=0, port=port, worker_timeout=15.0)
        serial = SerialBackend().run(context, tasks)
        queued = backend.run(context, tasks)
        thread.join(timeout=15.0)
        assert not thread.is_alive()
        _assert_bit_identical(serial, queued)
        assert completed["tasks"] == 3


@pytest.mark.slow  # tier 2: repeated batches with randomized worker deaths
class TestRandomizedFaults:
    def test_parity_under_randomized_worker_deaths(
        self, tiny_graph, queue_training_config, rng
    ):
        tasks = _tasks(6)
        context = EvaluationContext(tiny_graph, queue_training_config)
        serial = SerialBackend().run(context, tasks)
        for _ in range(3):
            kills = {
                worker: int(rng.integers(0, 3))
                for worker in range(2)
                if rng.random() < 0.75
            }
            backend = _fast_queue(num_workers=2, _kill_after_tasks=kills, max_retries=4)
            queued = backend.run(context, tasks)
            _assert_bit_identical(serial, queued)
