"""Tests for the batched inference engine: parity, filtering, caching, top-k."""

import threading

import numpy as np
import pytest

from repro.kge import train_model
from repro.kge.topk import (
    select_predictions,
    select_predictions_batch,
    top_k_indices,
    top_k_reference,
)
from repro.core.search_space import random_structure
from repro.serving import (
    HotRelationCache,
    InferenceEngine,
    MicroBatcher,
    export_artifact,
    known_positive_index,
    load_artifact,
)
from repro.utils.config import TrainingConfig

FAMILIES = ["complex", "rescal", "transe", "rotate", "mlp"]


@pytest.fixture(scope="module")
def family_models(tiny_graph):
    config = TrainingConfig(dimension=8, epochs=2, batch_size=64, learning_rate=0.5, seed=0)
    models = {name: train_model(tiny_graph, name, config) for name in FAMILIES}
    models["searched"] = train_model(
        tiny_graph, random_structure(6, rng=0, require_c2=True), config
    )
    return models


def assert_same_predictions(answer, expected, context=""):
    """Same entities in the same order; scores equal to float round-off.

    The engine's fused relation operators sum GEMMs in a different order
    than per-query ``score_candidates``, so scores may differ in the last
    ulp — but the ranking (including tie-breaking) must be identical.
    """
    assert [entity for entity, _ in answer] == [entity for entity, _ in expected], context
    np.testing.assert_allclose(
        [score for _, score in answer],
        [score for _, score in expected],
        rtol=1e-12,
        atol=1e-12,
        err_msg=context,
    )


@pytest.fixture(scope="module")
def query_workload(tiny_graph):
    """Heterogeneous head/tail queries covering every relation."""
    queries = []
    for h, r, t in tiny_graph.test[:20]:
        queries.append(("tail", int(h), int(r)))
        queries.append(("head", int(t), int(r)))
    return queries


class TestTopKHelpers:
    def test_matches_reference_on_random_scores(self, rng):
        for _ in range(50):
            scores = rng.normal(size=40)
            k = int(rng.integers(1, 40))
            np.testing.assert_array_equal(top_k_indices(scores, k), top_k_reference(scores, k))

    def test_matches_reference_with_heavy_ties(self, rng):
        for _ in range(50):
            scores = rng.integers(0, 4, size=30).astype(float)  # many exact ties
            k = int(rng.integers(1, 30))
            np.testing.assert_array_equal(top_k_indices(scores, k), top_k_reference(scores, k))

    def test_ties_break_by_lower_index(self):
        scores = np.array([1.0, 3.0, 3.0, 2.0, 3.0])
        np.testing.assert_array_equal(top_k_indices(scores, 2), [1, 2])
        np.testing.assert_array_equal(top_k_indices(scores, 4), [1, 2, 4, 3])

    def test_k_larger_than_n(self):
        scores = np.array([1.0, 2.0])
        np.testing.assert_array_equal(top_k_indices(scores, 10), [1, 0])

    def test_k_zero(self):
        assert top_k_indices(np.array([1.0]), 0).size == 0

    def test_batch_selection_matches_scalar(self, rng):
        """The vectorized batch selector must equal the per-row helper —
        including rows with heavy exact ties and -inf masked entries."""
        for _ in range(20):
            scores = rng.integers(0, 5, size=(12, 25)).astype(float)
            scores[rng.random(size=scores.shape) < 0.2] = -np.inf
            k = int(rng.integers(1, 30))
            for row, (indices, values) in enumerate(select_predictions_batch(scores, k)):
                expected_indices, expected_values = select_predictions(scores[row], k)
                np.testing.assert_array_equal(indices, expected_indices)
                np.testing.assert_array_equal(values, expected_values)


class TestEngineOracleParity:
    """The engine must reproduce the naive KGEModel.predict_* path exactly."""

    @pytest.mark.parametrize("name", FAMILIES + ["searched"])
    def test_unfiltered_parity(self, name, family_models, query_workload):
        model = family_models[name]
        engine = InferenceEngine(model.scoring_function, model.params)
        batched = engine.query_batch(query_workload, top_k=10)
        for (direction, entity, relation), answer in zip(query_workload, batched):
            if direction == "tail":
                expected = model.predict_tails(entity, relation, top_k=10)
            else:
                expected = model.predict_heads(relation, entity, top_k=10)
            assert_same_predictions(
                answer, expected, f"{name} {direction} ({entity}, {relation})"
            )

    @pytest.mark.parametrize("name", ["complex", "transe"])
    def test_filtered_parity(self, name, family_models, tiny_graph, query_workload):
        model = family_models[name]
        index = known_positive_index(tiny_graph)
        engine = InferenceEngine(model.scoring_function, model.params, filter_index=index)
        batched = engine.query_batch(query_workload, top_k=10, filtered=True)
        for (direction, entity, relation), answer in zip(query_workload, batched):
            if direction == "tail":
                expected = model.predict_tails(entity, relation, top_k=10, exclude_known=index)
            else:
                expected = model.predict_heads(relation, entity, top_k=10, exclude_known=index)
            assert_same_predictions(answer, expected, f"{name} {direction}")

    def test_tie_breaking_parity(self, family_models, tiny_graph):
        """Duplicated entity rows force exact score ties in both paths."""
        model = family_models["complex"]
        params = {key: value.copy() for key, value in model.params.items()}
        params["entities"][10:20] = params["entities"][0:10]  # exact duplicates
        engine = InferenceEngine(model.scoring_function, params)
        for relation in range(tiny_graph.num_relations):
            answer = engine.query_batch([("tail", 0, relation)], top_k=15)[0]
            scores = model.scoring_function.score_candidates(
                params, np.asarray([[0, relation]]), direction="tail"
            )[0]
            expected = top_k_reference(scores, 15)
            np.testing.assert_array_equal([entity for entity, _ in answer], expected)

    def test_micro_batching_invariant(self, family_models, query_workload):
        model = family_models["searched"]
        small = InferenceEngine(model.scoring_function, model.params, batch_size=3)
        large = InferenceEngine(model.scoring_function, model.params, batch_size=1024)
        for answer, expected in zip(
            small.query_batch(query_workload, top_k=7),
            large.query_batch(query_workload, top_k=7),
        ):
            assert_same_predictions(answer, expected)

    @pytest.mark.parametrize("name", ["transe", "rotate", "complex"])
    def test_entity_chunking_invariant(self, name, family_models, query_workload):
        """Entity-axis chunking (the memory bound for distance-based models)
        must not change any answer."""
        model = family_models[name]
        chunked = InferenceEngine(model.scoring_function, model.params, entity_chunk_size=7)
        full = InferenceEngine(model.scoring_function, model.params)
        for answer, expected in zip(
            chunked.query_batch(query_workload, top_k=7),
            full.query_batch(query_workload, top_k=7),
        ):
            assert_same_predictions(answer, expected)


class TestFiltering:
    def test_known_positives_removed(self, family_models, tiny_graph):
        model = family_models["complex"]
        index = known_positive_index(tiny_graph, splits=("train", "valid"))
        engine = InferenceEngine(model.scoring_function, model.params, filter_index=index)
        for h, r, _t in tiny_graph.train[:30]:
            h, r = int(h), int(r)
            answer = engine.query_batch(
                [("tail", h, r)], top_k=tiny_graph.num_entities, filtered=True
            )[0]
            answered = {entity for entity, _ in answer}
            known_tails = {
                int(t)
                for split in ("train", "valid")
                for hh, rr, t in tiny_graph.split(split)
                if int(hh) == h and int(rr) == r
            }
            assert known_tails and not (answered & known_tails)

    def test_filtered_returns_fewer_when_saturated(self, family_models, tiny_graph):
        model = family_models["complex"]
        index = known_positive_index(tiny_graph)
        engine = InferenceEngine(model.scoring_function, model.params, filter_index=index)
        h, r = int(tiny_graph.train[0, 0]), int(tiny_graph.train[0, 1])
        full = engine.query_batch([("tail", h, r)], top_k=tiny_graph.num_entities)[0]
        filtered = engine.query_batch(
            [("tail", h, r)], top_k=tiny_graph.num_entities, filtered=True
        )[0]
        assert len(filtered) < len(full) == tiny_graph.num_entities

    def test_filtered_without_index_raises(self, family_models):
        model = family_models["complex"]
        engine = InferenceEngine(model.scoring_function, model.params)
        with pytest.raises(ValueError, match="filter index"):
            engine.query_batch([("tail", 0, 0)], filtered=True)


class TestCachingAndValidation:
    def test_result_cache_hits(self, family_models):
        model = family_models["complex"]
        engine = InferenceEngine(model.scoring_function, model.params)
        first = engine.query_batch([("tail", 0, 0)], top_k=5)
        assert engine.cache_hits == 0
        second = engine.query_batch([("tail", 0, 0)], top_k=5)
        assert engine.cache_hits == 1
        assert first == second

    def test_distinct_top_k_not_conflated(self, family_models):
        model = family_models["complex"]
        engine = InferenceEngine(model.scoring_function, model.params)
        five = engine.query_batch([("tail", 0, 0)], top_k=5)[0]
        ten = engine.query_batch([("tail", 0, 0)], top_k=10)[0]
        assert len(five) == 5 and len(ten) == 10
        assert ten[:5] == five

    def test_operator_cache_bounded(self, family_models, tiny_graph):
        model = family_models["complex"]
        engine = InferenceEngine(model.scoring_function, model.params, operator_cache_size=2)
        for relation in range(tiny_graph.num_relations):
            engine.query_batch([("tail", 0, relation)])
        assert len(engine._operators) <= 2

    def test_stats_counters(self, family_models):
        model = family_models["complex"]
        engine = InferenceEngine(model.scoring_function, model.params)
        engine.query_batch([("tail", 0, 0), ("head", 1, 0)])
        stats = engine.stats()
        assert stats["queries_served"] == 2
        assert stats["scoring_function"] == model.scoring_function.name
        assert "score" in stats["timings"]

    def test_out_of_range_rejected(self, family_models):
        model = family_models["complex"]
        engine = InferenceEngine(model.scoring_function, model.params)
        with pytest.raises(ValueError, match="entity id"):
            engine.query_batch([("tail", 10**6, 0)])
        with pytest.raises(ValueError, match="relation id"):
            engine.query_batch([("tail", 0, 10**6)])
        with pytest.raises(ValueError, match="direction"):
            engine.query_batch([("sideways", 0, 0)])


class TestHotRelationCache:
    """Size-bounded operator cache with frequency-gated admission."""

    def test_admission_gated_by_frequency(self):
        cache = HotRelationCache(capacity=4, admission_threshold=2)
        assert cache.offer("a", 1) is False  # first sighting: counted, rejected
        assert cache.get("a") is None
        assert cache.offer("a", 1) is True  # second sighting crosses the gate
        assert cache.get("a") == 1

    def test_threshold_one_admits_immediately(self):
        cache = HotRelationCache(capacity=2, admission_threshold=1)
        assert cache.offer("a", 1) is True
        assert cache.get("a") == 1

    def test_capacity_bounded_lru_eviction(self):
        cache = HotRelationCache(capacity=2, admission_threshold=1)
        for key in ("a", "b", "c"):
            cache.offer(key, key.upper())
        assert len(cache) == 2
        assert cache.get("a") is None  # least recently used, evicted
        assert cache.get("b") == "B" and cache.get("c") == "C"
        assert cache.stats()["evictions"] == 1

    def test_get_refreshes_recency(self):
        cache = HotRelationCache(capacity=2, admission_threshold=1)
        cache.offer("a", 1)
        cache.offer("b", 2)
        cache.get("a")  # now "b" is the LRU entry
        cache.offer("c", 3)
        assert cache.get("a") == 1 and cache.get("b") is None

    def test_stats_counters(self):
        cache = HotRelationCache(capacity=4, admission_threshold=2)
        cache.get("a")  # miss
        cache.offer("a", 1)  # rejection
        cache.offer("a", 1)  # admission
        cache.get("a")  # hit
        stats = cache.stats()
        assert stats["misses"] == 1 and stats["hits"] == 1
        assert stats["rejections"] == 1 and stats["admissions"] == 1
        assert stats["size"] == 1 and stats["capacity"] == 4

    def test_count_aging_keeps_sketch_bounded(self):
        cache = HotRelationCache(capacity=2, admission_threshold=2)
        for index in range(10_000):
            cache.offer(index, index)
        # The frequency sketch must not grow linearly with distinct keys.
        assert len(cache._counts) <= max(64, 8 * 2) + 1

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError, match="capacity"):
            HotRelationCache(capacity=0)
        with pytest.raises(ValueError, match="admission_threshold"):
            HotRelationCache(capacity=2, admission_threshold=0)

    def test_engine_admits_operator_on_second_use(self, family_models):
        model = family_models["complex"]
        engine = InferenceEngine(
            model.scoring_function, model.params,
            result_cache_size=0, operator_admission_threshold=2,
        )
        engine.query_batch([("tail", 0, 0)])
        assert engine.stats()["operator_cache"]["size"] == 0  # cold: rejected
        engine.query_batch([("tail", 1, 0)])
        assert engine.stats()["operator_cache"]["size"] == 1  # hot: admitted
        engine.query_batch([("tail", 2, 0)])
        assert engine.stats()["operator_cache"]["hits"] == 1

    def test_admission_gate_does_not_change_answers(self, family_models, query_workload):
        model = family_models["searched"]
        gated = InferenceEngine(
            model.scoring_function, model.params, operator_admission_threshold=3
        )
        eager = InferenceEngine(
            model.scoring_function, model.params, operator_admission_threshold=1
        )
        for _ in range(2):  # second pass exercises cached operators
            for answer, expected in zip(
                gated.query_batch(query_workload, top_k=7),
                eager.query_batch(query_workload, top_k=7),
            ):
                assert answer == expected


@pytest.fixture(scope="module")
def memmap_engine_setup(family_models, tiny_graph, tmp_path_factory):
    model = family_models["complex"]
    path = export_artifact(
        model, tmp_path_factory.mktemp("memmap-engine") / "artifact", graph=tiny_graph
    )
    return load_artifact(path, mmap=True), model


class TestSharedMemmapConcurrency:
    """Cache behavior and read integrity under concurrent query_batch calls."""

    def test_concurrent_queries_no_torn_reads(self, memmap_engine_setup, query_workload):
        artifact, model = memmap_engine_setup
        # The result cache must hold every distinct query: a partial cache
        # would regroup the misses into narrower GEMMs on later rounds, and
        # float scores depend on the group width.
        engine = InferenceEngine.from_artifact(artifact, result_cache_size=256)
        reference = InferenceEngine(model.scoring_function, model.params)
        # Deduplicated and partitioned: threads share no query key, so a
        # result-cache hit always replays a score computed under the same
        # batch shape — bit-identical is the memmap-vs-in-memory contract.
        distinct = list(dict.fromkeys(query_workload))
        batches = {offset: distinct[offset::3] for offset in range(3)}
        expected = {
            offset: reference.query_batch(batch, top_k=5)
            for offset, batch in batches.items()
        }
        errors = []

        def worker(offset):
            try:
                for round_index in range(4):
                    answers = engine.query_batch(batches[offset], top_k=5)
                    assert answers == expected[offset], (round_index, offset)
            except BaseException as error:  # noqa: BLE001 - reported below
                errors.append(error)

        threads = [threading.Thread(target=worker, args=(offset,)) for offset in range(3)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        stats = engine.stats()
        assert stats["params_memmap"] is True
        assert stats["queries_served"] == 4 * len(distinct)

    def test_concurrent_eviction_churn_stays_bounded(self, memmap_engine_setup, tiny_graph):
        artifact, _ = memmap_engine_setup
        engine = InferenceEngine.from_artifact(
            artifact, operator_cache_size=2, operator_admission_threshold=1,
            result_cache_size=0,
        )

        def worker(direction):
            for _ in range(3):
                for relation in range(tiny_graph.num_relations):
                    engine.query_batch([(direction, 0, relation)], top_k=3)

        threads = [threading.Thread(target=worker, args=(d,)) for d in ("tail", "head")]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        stats = engine.stats()["operator_cache"]
        assert stats["size"] <= 2
        assert stats["evictions"] > 0
        assert stats["admissions"] == stats["evictions"] + stats["size"]

    def test_memmap_params_stay_readonly_through_engine(self, memmap_engine_setup):
        artifact, _ = memmap_engine_setup
        engine = InferenceEngine.from_artifact(artifact)
        engine.query_batch([("tail", 0, 0)], top_k=3)
        with pytest.raises(ValueError):
            engine.params["entities"][0, 0] = 123.0


class TestMicroBatcher:
    def test_zero_window_is_passthrough(self, family_models, query_workload):
        model = family_models["complex"]
        engine = InferenceEngine(model.scoring_function, model.params)
        batcher = MicroBatcher(engine, window_s=0)
        assert batcher.query_batch(query_workload, top_k=5) == engine.query_batch(
            query_workload, top_k=5
        )

    def test_negative_window_rejected(self, family_models):
        model = family_models["complex"]
        engine = InferenceEngine(model.scoring_function, model.params)
        with pytest.raises(ValueError, match="window_s"):
            MicroBatcher(engine, window_s=-0.001)

    def test_single_caller_gets_exact_results(self, family_models, query_workload):
        model = family_models["complex"]
        engine = InferenceEngine(model.scoring_function, model.params)
        reference = InferenceEngine(model.scoring_function, model.params)
        batcher = MicroBatcher(engine, window_s=0.001)
        assert batcher.query_batch(query_workload, top_k=5) == reference.query_batch(
            query_workload, top_k=5
        )

    def test_concurrent_callers_coalesce(self, family_models, query_workload):
        model = family_models["complex"]
        engine = InferenceEngine(model.scoring_function, model.params, result_cache_size=0)
        reference = InferenceEngine(model.scoring_function, model.params, result_cache_size=0)
        batcher = MicroBatcher(engine, window_s=0.05)
        chunks = [query_workload[0::2], query_workload[1::2]]
        expected = [reference.query_batch(chunk, top_k=5) for chunk in chunks]
        results = [None, None]
        barrier = threading.Barrier(2)

        def caller(index):
            barrier.wait()
            results[index] = batcher.query_batch(chunks[index], top_k=5)

        threads = [threading.Thread(target=caller, args=(i,)) for i in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert results[0] == expected[0]
        assert results[1] == expected[1]
        stats = batcher.stats()
        assert stats["calls"] == 2
        assert stats["coalesced_calls"] >= 1
        assert stats["largest_batch_calls"] == 2

    def test_error_isolated_to_offending_caller(self, family_models, query_workload):
        model = family_models["complex"]
        engine = InferenceEngine(model.scoring_function, model.params)
        batcher = MicroBatcher(engine, window_s=0.05)
        reference = InferenceEngine(model.scoring_function, model.params)
        good_chunk = query_workload[:6]
        expected = reference.query_batch(good_chunk, top_k=5)
        outcome = {}
        barrier = threading.Barrier(2)

        def good():
            barrier.wait()
            outcome["good"] = batcher.query_batch(good_chunk, top_k=5)

        def bad():
            barrier.wait()
            try:
                batcher.query_batch([("tail", 10**6, 0)], top_k=5)
            except ValueError as error:
                outcome["bad"] = error

        threads = [threading.Thread(target=good), threading.Thread(target=bad)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert isinstance(outcome["bad"], ValueError)
        assert "entity id" in str(outcome["bad"])
        assert outcome["good"] == expected  # unharmed by the bad co-batch

    def test_mixed_top_k_grouped_correctly(self, family_models, query_workload):
        model = family_models["complex"]
        engine = InferenceEngine(model.scoring_function, model.params)
        batcher = MicroBatcher(engine, window_s=0.05)
        results = {}
        barrier = threading.Barrier(2)

        def caller(top_k):
            barrier.wait()
            results[top_k] = batcher.query_batch(query_workload[:4], top_k=top_k)

        threads = [threading.Thread(target=caller, args=(k,)) for k in (3, 9)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert all(len(answer) == 3 for answer in results[3])
        assert all(len(answer) == 9 for answer in results[9])
        for three, nine in zip(results[3], results[9]):
            assert nine[:3] == three
