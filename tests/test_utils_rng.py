"""Tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.utils.rng import (
    choice_without_replacement,
    derive_seed,
    ensure_rng,
    permutation,
    spawn_rngs,
)


class TestEnsureRng:
    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = ensure_rng(42).integers(0, 1000, size=10)
        b = ensure_rng(42).integers(0, 1000, size=10)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        a = ensure_rng(1).integers(0, 10**6, size=20)
        b = ensure_rng(2).integers(0, 10**6, size=20)
        assert not np.array_equal(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert ensure_rng(gen) is gen

    def test_seed_sequence_accepted(self):
        seq = np.random.SeedSequence(5)
        assert isinstance(ensure_rng(seq), np.random.Generator)

    def test_invalid_type_raises(self):
        with pytest.raises(TypeError):
            ensure_rng("not a seed")

    def test_numpy_integer_seed(self):
        assert isinstance(ensure_rng(np.int64(3)), np.random.Generator)


class TestSpawnRngs:
    def test_count(self):
        children = spawn_rngs(0, 5)
        assert len(children) == 5

    def test_children_independent_streams(self):
        a, b = spawn_rngs(0, 2)
        assert not np.array_equal(a.integers(0, 10**6, 10), b.integers(0, 10**6, 10))

    def test_reproducible_for_same_seed(self):
        first = [g.integers(0, 10**6) for g in spawn_rngs(7, 3)]
        second = [g.integers(0, 10**6) for g in spawn_rngs(7, 3)]
        assert first == second

    def test_zero_count(self):
        assert list(spawn_rngs(0, 0)) == []

    def test_negative_count_raises(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_spawn_from_generator(self):
        children = spawn_rngs(np.random.default_rng(0), 3)
        assert len(children) == 3


class TestHelpers:
    def test_derive_seed_in_range(self):
        seed = derive_seed(np.random.default_rng(0))
        assert 0 <= seed < 2**31

    def test_permutation_is_permutation(self):
        perm = permutation(0, 10)
        assert sorted(perm.tolist()) == list(range(10))

    def test_choice_without_replacement_distinct(self):
        values = choice_without_replacement(0, 20, 10)
        assert len(set(values.tolist())) == 10

    def test_choice_respects_exclusion(self):
        values = choice_without_replacement(0, 10, 5, exclude={0, 1, 2})
        assert not set(values.tolist()) & {0, 1, 2}

    def test_choice_insufficient_raises(self):
        with pytest.raises(ValueError):
            choice_without_replacement(0, 5, 4, exclude={0, 1, 2})
