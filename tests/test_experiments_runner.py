"""Tests for the ExperimentRunner and the run-directory contract."""

import json

import pytest

from repro.experiments import (
    DatasetSpec,
    ExperimentRunner,
    ExperimentSpec,
    ExportSpec,
    HPOSpec,
    ObsSpec,
    RunDirectoryError,
    SearchSpec,
    load_run,
    run_experiment,
    spec_digest,
    validate_run_directory,
)
from repro.experiments.runner import (
    HISTORY_FILENAME,
    MANIFEST_FILENAME,
    METRICS_FILENAME,
    REPORT_FILENAME,
    RUN_SCHEMA_VERSION,
    SPEC_FILENAME,
    TRACE_DIRNAME,
)
from repro.obs.metrics import NULL_REGISTRY, get_registry
from repro.obs.trace import NULL_TRACER, get_tracer, merge_trace_dir, summarize_spans
from repro.serving import load_artifact
from repro.utils.config import PredictorConfig, TrainingConfig


def _quick_spec(**overrides):
    settings = dict(
        name="quick",
        seed=0,
        dataset=DatasetSpec(benchmark="wn18rr", scale=0.2, seed=0),
        training=TrainingConfig(dimension=8, epochs=3, batch_size=128, learning_rate=0.5),
        search=SearchSpec(
            strategy="greedy", budget=4, candidates_per_step=6, top_parents=3, train_per_step=2
        ),
        predictor=PredictorConfig(epochs=50),
    )
    settings.update(overrides)
    return ExperimentSpec(**settings)


@pytest.fixture(scope="module")
def completed_run(tmp_path_factory):
    run_dir = tmp_path_factory.mktemp("runs") / "quick"
    record = run_experiment(_quick_spec(), run_dir)
    return record


class TestRunDirectoryContract:
    def test_required_files_written(self, completed_run):
        for name in (SPEC_FILENAME, MANIFEST_FILENAME, HISTORY_FILENAME, REPORT_FILENAME):
            assert (completed_run.path / name).exists(), name
        assert (completed_run.path / "best" / "params.npz").exists()
        assert list((completed_run.path / "evaluations").glob("*.json"))

    def test_manifest_contents(self, completed_run):
        manifest = validate_run_directory(completed_run.path)
        assert manifest["run_schema_version"] == RUN_SCHEMA_VERSION
        assert manifest["status"] == "completed"
        assert manifest["strategy"] == "greedy"
        assert manifest["spec_digest"] == spec_digest(completed_run.spec)

    def test_report_contents(self, completed_run):
        report = completed_run.report
        assert report["num_evaluations"] == 4
        assert len(report["anytime_curve"]) == 4
        assert 0.0 <= completed_run.best_mrr <= 1.0
        assert report["best_structure"]["blocks"]
        assert "train" in report["timing"]

    def test_history_lines_match_evaluations(self, completed_run):
        assert len(completed_run.history) == completed_run.report["num_evaluations"]
        orders = [line["order"] for line in completed_run.history]
        assert orders == sorted(orders)
        for line in completed_run.history:
            assert 0.0 <= line["validation_mrr"] <= 1.0
            assert line["structure"]["blocks"]

    def test_loaded_spec_round_trips(self, completed_run):
        assert completed_run.spec == _quick_spec()

    def test_best_model_loads_and_queries(self, completed_run):
        model = completed_run.load_best_model()
        answers = model.predict_tails(0, 0, top_k=3)
        assert len(answers) == 3

    def test_resume_retrains_nothing(self, completed_run):
        best_params = completed_run.path / "best" / "params.npz"
        before = best_params.stat().st_mtime_ns
        record = ExperimentRunner(_quick_spec(), completed_run.path).run()
        assert record.report["num_trained"] == 0
        assert record.report["anytime_curve"] == completed_run.report["anytime_curve"]
        # The best/ checkpoint is reused, not retrained and rewritten.
        assert best_params.stat().st_mtime_ns == before


class TestValidation:
    def test_missing_directory(self, tmp_path):
        with pytest.raises(RunDirectoryError, match="does not exist"):
            validate_run_directory(tmp_path / "nowhere")

    def test_missing_manifest(self, tmp_path):
        (tmp_path / "empty").mkdir()
        with pytest.raises(RunDirectoryError, match="missing manifest.json"):
            validate_run_directory(tmp_path / "empty")

    def test_corrupted_manifest(self, completed_run, tmp_path):
        import shutil

        broken = tmp_path / "broken"
        shutil.copytree(completed_run.path, broken)
        (broken / MANIFEST_FILENAME).write_text("{not json", encoding="utf-8")
        with pytest.raises(RunDirectoryError, match="corrupt manifest.json"):
            load_run(broken)

    def test_manifest_missing_version(self, completed_run, tmp_path):
        import shutil

        broken = tmp_path / "versionless"
        shutil.copytree(completed_run.path, broken)
        (broken / MANIFEST_FILENAME).write_text(json.dumps({"status": "completed"}))
        with pytest.raises(RunDirectoryError, match="run_schema_version"):
            validate_run_directory(broken)

    def test_manifest_from_the_future(self, completed_run, tmp_path):
        import shutil

        future = tmp_path / "future"
        shutil.copytree(completed_run.path, future)
        manifest = json.loads((future / MANIFEST_FILENAME).read_text())
        manifest["run_schema_version"] = RUN_SCHEMA_VERSION + 1
        (future / MANIFEST_FILENAME).write_text(json.dumps(manifest))
        with pytest.raises(RunDirectoryError, match="newer than this release"):
            validate_run_directory(future)

    def test_missing_report_named(self, completed_run, tmp_path):
        import shutil

        partial = tmp_path / "partial"
        shutil.copytree(completed_run.path, partial)
        (partial / REPORT_FILENAME).unlink()
        with pytest.raises(RunDirectoryError, match="report.json"):
            validate_run_directory(partial)

    def test_corrupt_history_line_number(self, completed_run, tmp_path):
        import shutil

        broken = tmp_path / "history"
        shutil.copytree(completed_run.path, broken)
        with open(broken / HISTORY_FILENAME, "a", encoding="utf-8") as handle:
            handle.write("{truncated\n")
        with pytest.raises(RunDirectoryError, match="history.jsonl at line"):
            load_run(broken)


class TestRunnerFeatures:
    def test_random_strategy_with_export(self, tmp_path):
        spec = _quick_spec(
            name="random-export",
            search=SearchSpec(strategy="random", budget=3, num_blocks=6),
            export=ExportSpec(enabled=True),
        )
        record = run_experiment(spec, tmp_path / "run")
        assert record.strategy == "random"
        assert record.report["artifact"] == "artifact"
        artifact = load_artifact(record.path / "artifact")
        assert artifact.num_entities == record.load_best_model().params["entities"].shape[0]

    def test_hpo_section_tunes_training(self, tmp_path):
        spec = _quick_spec(
            name="hpo",
            search=SearchSpec(strategy="random", budget=2, num_blocks=6),
            hpo=HPOSpec(method="random", num_trials=2, model="distmult"),
        )
        record = run_experiment(spec, tmp_path / "run")
        hpo = record.report["hpo"]
        assert hpo["method"] == "random"
        assert hpo["num_trials"] == 2
        assert record.report["training_config"]["learning_rate"] == pytest.approx(
            hpo["best_settings"]["learning_rate"]
        )

    def test_budget_override(self, tmp_path):
        record = ExperimentRunner(_quick_spec(name="override"), tmp_path / "run").run(
            max_evaluations=2
        )
        assert record.report["num_evaluations"] == 2


class TestObservability:
    def test_obs_run_writes_trace_and_metrics(self, tmp_path):
        spec = _quick_spec(name="obs-on", obs=ObsSpec(enabled=True))
        record = run_experiment(spec, tmp_path / "run")
        metrics_path = record.path / METRICS_FILENAME
        assert metrics_path.exists()
        families = {
            entry["name"]
            for entry in json.loads(metrics_path.read_text(encoding="utf-8"))["metrics"]
        }
        assert "repro_search_rounds_total" in families
        assert "repro_train_epochs_total" in families
        assert "repro_phase_seconds" in families
        trace_dir = record.path / TRACE_DIRNAME
        events = merge_trace_dir(trace_dir)
        names = {event["name"] for event in events}
        assert {"run.search", "search.round", "search.candidate", "train.epoch"} <= names
        # The runner restores the process-global sinks on the way out.
        assert get_registry() is NULL_REGISTRY
        assert get_tracer() is NULL_TRACER

    def test_trace_summary_agrees_with_timing_recorder(self, tmp_path):
        """The per-phase trace breakdown matches the report's Table VII timing.

        ``candidate.train`` / ``candidate.evaluate`` spans wrap exactly the
        work the evaluator attributes to the ``train`` / ``evaluate`` phases
        (one span per freshly trained candidate; cache replays add neither a
        span nor seconds), so counts match exactly and totals agree within
        timer resolution.
        """
        spec = _quick_spec(name="obs-agree", obs=ObsSpec(enabled=True))
        record = run_experiment(spec, tmp_path / "run")
        summary = summarize_spans(merge_trace_dir(record.path / TRACE_DIRNAME))
        timing = record.report["timing"]
        for span_name, phase in (
            ("candidate.train", "train"),
            ("candidate.evaluate", "evaluate"),
        ):
            assert summary[span_name]["count"] == timing[phase]["count"]
            assert summary[span_name]["total"] == pytest.approx(
                timing[phase]["total"], abs=0.05
            )

    def test_obs_selective_sections(self, tmp_path):
        spec = _quick_spec(name="obs-metrics-only", obs=ObsSpec(enabled=True, trace=False))
        record = run_experiment(spec, tmp_path / "run")
        assert (record.path / METRICS_FILENAME).exists()
        assert not (record.path / TRACE_DIRNAME).exists()

    def test_disabled_obs_leaves_outputs_identical(self, tmp_path):
        """Instrumentation off vs on: the numeric trajectory is bit-identical."""
        plain = run_experiment(_quick_spec(name="parity"), tmp_path / "plain")
        observed = run_experiment(
            _quick_spec(name="parity", obs=ObsSpec(enabled=True)), tmp_path / "observed"
        )
        assert plain.best_mrr == observed.best_mrr
        assert plain.anytime_curve() == observed.anytime_curve()
        assert [e["validation_mrr"] for e in plain.history] == [
            e["validation_mrr"] for e in observed.history
        ]
        assert [e["structure"] for e in plain.history] == [
            e["structure"] for e in observed.history
        ]
