"""Golden-run regression suite.

``tests/golden/run/`` holds the four contract files of a miniature
completed run produced by :class:`repro.experiments.ExperimentRunner`
(``spec.json`` / ``manifest.json`` / ``history.jsonl`` / ``report.json``).
Re-running the committed spec must reproduce the recorded metrics within a
tight numeric tolerance — searching and training are deterministic given
the spec's seeds, so any drift here means a refactor changed search or
training behavior, not just its implementation.

To refresh the golden run after an *intentional* behavior change, re-run
the spec and copy the four files (see TESTING.md, "Refreshing the golden
run").
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest

from repro.experiments import (
    ExperimentRunner,
    ExperimentSpec,
    load_run,
    spec_digest,
    validate_run_directory,
)

GOLDEN_DIR = Path(__file__).parent / "golden" / "run"

#: Metric tolerance: runs are bit-deterministic on one platform; the small
#: slack absorbs float summation differences across numpy builds.
TOLERANCE = 1e-9


@pytest.fixture(scope="module")
def golden():
    return load_run(GOLDEN_DIR)


@pytest.fixture(scope="module")
def rerun(golden, tmp_path_factory):
    spec = ExperimentSpec.load(GOLDEN_DIR / "spec.json")
    return ExperimentRunner(spec, tmp_path_factory.mktemp("golden-rerun") / "run").run()


class TestGoldenDirectory:
    def test_is_a_valid_completed_run(self):
        manifest = validate_run_directory(GOLDEN_DIR)
        assert manifest["status"] == "completed"

    def test_spec_digest_matches_manifest(self, golden):
        assert golden.manifest["spec_digest"] == spec_digest(golden.spec)

    def test_history_is_complete(self, golden):
        assert len(golden.history) == golden.report["num_evaluations"]
        orders = [record["order"] for record in golden.history]
        assert orders == list(range(orders[0], orders[0] + len(orders)))


class TestGoldenRegression:
    def test_best_mrr_reproduces(self, golden, rerun):
        assert rerun.best_mrr == pytest.approx(golden.best_mrr, abs=TOLERANCE)

    def test_best_structure_reproduces(self, golden, rerun):
        assert (
            rerun.report["best_structure"]["blocks"]
            == golden.report["best_structure"]["blocks"]
        )

    def test_anytime_curve_reproduces(self, golden, rerun):
        np.testing.assert_allclose(
            rerun.anytime_curve(), golden.anytime_curve(), atol=TOLERANCE
        )

    def test_history_reproduces_evaluation_by_evaluation(self, golden, rerun):
        assert len(rerun.history) == len(golden.history)
        for got, expected in zip(rerun.history, golden.history):
            assert got["structure"]["blocks"] == expected["structure"]["blocks"]
            assert got["validation_mrr"] == pytest.approx(
                expected["validation_mrr"], abs=TOLERANCE
            )

    def test_rerun_is_itself_a_valid_run_directory(self, rerun):
        manifest = validate_run_directory(rerun.path)
        assert manifest["status"] == "completed"
        # the best model retrained from the winning structure is loadable
        model = rerun.load_best_model()
        assert model.params is not None
