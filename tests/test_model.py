"""Tests for the high-level KGEModel wrapper."""

import numpy as np
import pytest

from repro.kge import KGEModel, ModelLoadError, train_model
from repro.kge.scoring import BlockScoringFunction, DistMult, classical_structure
from repro.core.search_space import random_structure
from repro.serving import known_positive_index
from repro.utils.config import TrainingConfig
from repro.utils.serialization import from_json_file, to_json_file


@pytest.fixture(scope="module")
def trained_model(tiny_graph):
    config = TrainingConfig(dimension=8, epochs=10, batch_size=64, learning_rate=0.5, seed=0)
    return train_model(tiny_graph, "simple", config)


class TestTrainModel:
    def test_accepts_model_name(self, tiny_graph, fast_training_config):
        model = train_model(tiny_graph, "distmult", fast_training_config)
        assert model.params is not None
        assert model.history is not None

    def test_accepts_instance(self, tiny_graph, fast_training_config):
        model = train_model(tiny_graph, DistMult(), fast_training_config)
        assert model.scoring_function.name == "DistMult"

    def test_accepts_block_structure(self, tiny_graph, fast_training_config):
        structure = random_structure(6, rng=0, require_c2=True)
        model = train_model(tiny_graph, structure, fast_training_config)
        assert isinstance(model.scoring_function, BlockScoringFunction)

    def test_default_config_used_when_missing(self, tiny_graph):
        # Only check that the call path works with a tiny graph; epochs=60
        # default would be slow, so pass a config here but omit validate.
        config = TrainingConfig(dimension=8, epochs=2, batch_size=64)
        model = train_model(tiny_graph, "distmult", config)
        assert model.history.epochs[-1] == 2


class TestPrediction:
    def test_score_shape(self, trained_model, tiny_graph):
        scores = trained_model.score(tiny_graph.test[:5])
        assert scores.shape == (5,)

    def test_predict_tails_returns_sorted_topk(self, trained_model):
        predictions = trained_model.predict_tails(0, 0, top_k=5)
        assert len(predictions) == 5
        scores = [score for _entity, score in predictions]
        assert scores == sorted(scores, reverse=True)

    def test_predict_heads_returns_entities_in_range(self, trained_model, tiny_graph):
        predictions = trained_model.predict_heads(0, 1, top_k=3)
        assert all(0 <= entity < tiny_graph.num_entities for entity, _ in predictions)

    def test_true_tail_ranks_well(self, trained_model, tiny_graph):
        h, r, t = (int(v) for v in tiny_graph.train[0])
        top = [entity for entity, _ in trained_model.predict_tails(h, r, top_k=tiny_graph.num_entities)]
        assert t in top[: max(10, tiny_graph.num_entities // 3)]

    def test_unfitted_model_raises(self):
        model = KGEModel(DistMult(), TrainingConfig(dimension=8, epochs=1))
        with pytest.raises(RuntimeError):
            model.score(np.array([[0, 0, 1]]))

    def test_predict_ties_break_by_lower_entity_index(self, trained_model):
        params = {key: value.copy() for key, value in trained_model.params.items()}
        params["entities"][5] = params["entities"][2]  # force an exact tie
        tied = KGEModel(trained_model.scoring_function, trained_model.config, params=params)
        predictions = tied.predict_tails(0, 0, top_k=params["entities"].shape[0])
        ranks = {entity: rank for rank, (entity, _score) in enumerate(predictions)}
        assert ranks[2] + 1 == ranks[5]

    def test_exclude_known_removes_training_tails(self, trained_model, tiny_graph):
        index = known_positive_index(tiny_graph, splits=("train",))
        h, r = int(tiny_graph.train[0, 0]), int(tiny_graph.train[0, 1])
        known = {
            int(t) for hh, rr, t in tiny_graph.train if int(hh) == h and int(rr) == r
        }
        predictions = trained_model.predict_tails(
            h, r, top_k=tiny_graph.num_entities, exclude_known=index
        )
        answered = {entity for entity, _score in predictions}
        assert known and not (answered & known)
        assert len(predictions) == tiny_graph.num_entities - len(known)

    def test_exclude_known_heads(self, trained_model, tiny_graph):
        index = known_positive_index(tiny_graph, splits=("train",))
        r, t = int(tiny_graph.train[0, 1]), int(tiny_graph.train[0, 2])
        known = {
            int(h) for h, rr, tt in tiny_graph.train if int(rr) == r and int(tt) == t
        }
        predictions = trained_model.predict_heads(
            r, t, top_k=tiny_graph.num_entities, exclude_known=index
        )
        assert known and not ({entity for entity, _ in predictions} & known)


class TestEvaluationAndClassification:
    def test_evaluate_returns_metrics(self, trained_model, tiny_graph):
        result = trained_model.evaluate(tiny_graph, split="valid")
        assert 0 <= result.mrr <= 1

    def test_classify_returns_accuracy(self, trained_model, tiny_graph):
        accuracy = trained_model.classify(tiny_graph)
        assert 0 <= accuracy <= 1

    def test_fit_with_validation_records_mrr(self, tiny_graph):
        config = TrainingConfig(
            dimension=8, epochs=4, batch_size=64, learning_rate=0.5, eval_every=2, seed=0
        )
        model = KGEModel(DistMult(), config)
        history = model.fit(tiny_graph, validate=True)
        assert any(value is not None for value in history.validation_mrr)


class TestSerialization:
    def test_save_and_load_named_model(self, trained_model, tiny_graph, tmp_path):
        directory = trained_model.save(tmp_path / "model")
        loaded = KGEModel.load(directory)
        original = trained_model.evaluate(tiny_graph, split="valid").mrr
        restored = loaded.evaluate(tiny_graph, split="valid").mrr
        assert restored == pytest.approx(original)

    def test_save_and_load_block_structure_model(self, tiny_graph, fast_training_config, tmp_path):
        structure = classical_structure("analogy")
        model = train_model(tiny_graph, structure, fast_training_config)
        loaded = KGEModel.load(model.save(tmp_path / "blockmodel"))
        assert isinstance(loaded.scoring_function, BlockScoringFunction)
        assert loaded.scoring_function.structure.key() == structure.key()

    def test_loaded_scores_match(self, trained_model, tiny_graph, tmp_path):
        loaded = KGEModel.load(trained_model.save(tmp_path / "scores"))
        triples = tiny_graph.test[:4]
        np.testing.assert_allclose(loaded.score(triples), trained_model.score(triples))

    def test_save_without_params_raises(self, tmp_path):
        model = KGEModel(DistMult(), TrainingConfig(dimension=8, epochs=1))
        with pytest.raises(RuntimeError):
            model.save(tmp_path / "nothing")

    def test_save_persists_counts_and_vocab(self, trained_model, tiny_graph, tmp_path):
        directory = trained_model.save(tmp_path / "standalone", graph=tiny_graph)
        metadata = from_json_file(directory / "model.json")
        assert metadata["num_entities"] == tiny_graph.num_entities
        assert metadata["num_relations"] == tiny_graph.num_relations
        vocab = from_json_file(directory / "vocab.json")
        assert vocab["relation_names"] == list(tiny_graph.relation_names)

    def test_save_rejects_mismatched_graph(self, trained_model, micro_graph, tmp_path):
        with pytest.raises(ValueError, match="does not match"):
            trained_model.save(tmp_path / "mismatch", graph=micro_graph)


class TestLoadValidation:
    def test_missing_directory(self, tmp_path):
        with pytest.raises(ModelLoadError, match="missing model.json, params.npz"):
            KGEModel.load(tmp_path / "nowhere")

    def test_half_written_directory(self, trained_model, tmp_path):
        directory = trained_model.save(tmp_path / "half")
        (directory / "params.npz").unlink()
        with pytest.raises(ModelLoadError, match="params.npz"):
            KGEModel.load(directory)

    def test_corrupt_metadata(self, trained_model, tmp_path):
        directory = trained_model.save(tmp_path / "corrupt")
        (directory / "model.json").write_text("{oops", encoding="utf-8")
        with pytest.raises(ModelLoadError, match="not valid JSON"):
            KGEModel.load(directory)

    def test_missing_metadata_keys(self, trained_model, tmp_path):
        directory = trained_model.save(tmp_path / "nokeys")
        metadata = from_json_file(directory / "model.json")
        del metadata["config"]
        to_json_file(metadata, directory / "model.json")
        with pytest.raises(ModelLoadError, match="missing required keys: config"):
            KGEModel.load(directory)

    def test_missing_param_arrays(self, trained_model, tmp_path):
        directory = trained_model.save(tmp_path / "noarrays")
        np.savez(directory / "params.npz", entities=trained_model.params["entities"])
        with pytest.raises(ModelLoadError, match="relations"):
            KGEModel.load(directory)

    def test_count_mismatch(self, trained_model, tmp_path):
        directory = trained_model.save(tmp_path / "badcount")
        metadata = from_json_file(directory / "model.json")
        metadata["num_entities"] += 3
        to_json_file(metadata, directory / "model.json")
        with pytest.raises(ModelLoadError, match="declares"):
            KGEModel.load(directory)
