"""Tests for the high-level KGEModel wrapper."""

import numpy as np
import pytest

from repro.kge import KGEModel, train_model
from repro.kge.scoring import BlockScoringFunction, DistMult, classical_structure
from repro.core.search_space import random_structure
from repro.utils.config import TrainingConfig


@pytest.fixture(scope="module")
def trained_model(tiny_graph):
    config = TrainingConfig(dimension=8, epochs=10, batch_size=64, learning_rate=0.5, seed=0)
    return train_model(tiny_graph, "simple", config)


class TestTrainModel:
    def test_accepts_model_name(self, tiny_graph, fast_training_config):
        model = train_model(tiny_graph, "distmult", fast_training_config)
        assert model.params is not None
        assert model.history is not None

    def test_accepts_instance(self, tiny_graph, fast_training_config):
        model = train_model(tiny_graph, DistMult(), fast_training_config)
        assert model.scoring_function.name == "DistMult"

    def test_accepts_block_structure(self, tiny_graph, fast_training_config):
        structure = random_structure(6, rng=0, require_c2=True)
        model = train_model(tiny_graph, structure, fast_training_config)
        assert isinstance(model.scoring_function, BlockScoringFunction)

    def test_default_config_used_when_missing(self, tiny_graph):
        # Only check that the call path works with a tiny graph; epochs=60
        # default would be slow, so pass a config here but omit validate.
        config = TrainingConfig(dimension=8, epochs=2, batch_size=64)
        model = train_model(tiny_graph, "distmult", config)
        assert model.history.epochs[-1] == 2


class TestPrediction:
    def test_score_shape(self, trained_model, tiny_graph):
        scores = trained_model.score(tiny_graph.test[:5])
        assert scores.shape == (5,)

    def test_predict_tails_returns_sorted_topk(self, trained_model):
        predictions = trained_model.predict_tails(0, 0, top_k=5)
        assert len(predictions) == 5
        scores = [score for _entity, score in predictions]
        assert scores == sorted(scores, reverse=True)

    def test_predict_heads_returns_entities_in_range(self, trained_model, tiny_graph):
        predictions = trained_model.predict_heads(0, 1, top_k=3)
        assert all(0 <= entity < tiny_graph.num_entities for entity, _ in predictions)

    def test_true_tail_ranks_well(self, trained_model, tiny_graph):
        h, r, t = (int(v) for v in tiny_graph.train[0])
        top = [entity for entity, _ in trained_model.predict_tails(h, r, top_k=tiny_graph.num_entities)]
        assert t in top[: max(10, tiny_graph.num_entities // 3)]

    def test_unfitted_model_raises(self):
        model = KGEModel(DistMult(), TrainingConfig(dimension=8, epochs=1))
        with pytest.raises(RuntimeError):
            model.score(np.array([[0, 0, 1]]))


class TestEvaluationAndClassification:
    def test_evaluate_returns_metrics(self, trained_model, tiny_graph):
        result = trained_model.evaluate(tiny_graph, split="valid")
        assert 0 <= result.mrr <= 1

    def test_classify_returns_accuracy(self, trained_model, tiny_graph):
        accuracy = trained_model.classify(tiny_graph)
        assert 0 <= accuracy <= 1

    def test_fit_with_validation_records_mrr(self, tiny_graph):
        config = TrainingConfig(
            dimension=8, epochs=4, batch_size=64, learning_rate=0.5, eval_every=2, seed=0
        )
        model = KGEModel(DistMult(), config)
        history = model.fit(tiny_graph, validate=True)
        assert any(value is not None for value in history.validation_mrr)


class TestSerialization:
    def test_save_and_load_named_model(self, trained_model, tiny_graph, tmp_path):
        directory = trained_model.save(tmp_path / "model")
        loaded = KGEModel.load(directory)
        original = trained_model.evaluate(tiny_graph, split="valid").mrr
        restored = loaded.evaluate(tiny_graph, split="valid").mrr
        assert restored == pytest.approx(original)

    def test_save_and_load_block_structure_model(self, tiny_graph, fast_training_config, tmp_path):
        structure = classical_structure("analogy")
        model = train_model(tiny_graph, structure, fast_training_config)
        loaded = KGEModel.load(model.save(tmp_path / "blockmodel"))
        assert isinstance(loaded.scoring_function, BlockScoringFunction)
        assert loaded.scoring_function.structure.key() == structure.key()

    def test_loaded_scores_match(self, trained_model, tiny_graph, tmp_path):
        loaded = KGEModel.load(trained_model.save(tmp_path / "scores"))
        triples = tiny_graph.test[:4]
        np.testing.assert_allclose(loaded.score(triples), trained_model.score(triples))

    def test_save_without_params_raises(self, tmp_path):
        model = KGEModel(DistMult(), TrainingConfig(dimension=8, epochs=1))
        with pytest.raises(RuntimeError):
            model.save(tmp_path / "nothing")
