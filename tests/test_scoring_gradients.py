"""Finite-difference checks of every analytic gradient.

The training loop relies entirely on hand-derived gradients; these tests
compare ``grad_candidates`` against central finite differences of the scalar
loss ``sum(dscores * scores)`` for random upstream gradients, in both ranking
directions and with candidate subsets.
"""

import numpy as np
import pytest

from repro.kge.scoring import (
    RESCAL,
    Analogy,
    BlockScoringFunction,
    ComplEx,
    DistMult,
    MLPScoringFunction,
    RotatE,
    SimplE,
    TransE,
)
from repro.kge.scoring.base import HEAD, TAIL
from repro.core.search_space import random_structure

NUM_ENTITIES, NUM_RELATIONS, DIMENSION = 7, 3, 8
EPSILON = 1e-6


def numerical_gradient(model, params, queries, dscores, direction, candidates, key):
    """Central finite differences of sum(dscores * scores) w.r.t. params[key]."""
    grad = np.zeros_like(params[key])
    flat = params[key].ravel()
    grad_flat = grad.ravel()
    for index in range(flat.size):
        original = flat[index]
        flat[index] = original + EPSILON
        plus = np.sum(
            dscores * model.score_candidates(params, queries, direction=direction, candidates=candidates)
        )
        flat[index] = original - EPSILON
        minus = np.sum(
            dscores * model.score_candidates(params, queries, direction=direction, candidates=candidates)
        )
        flat[index] = original
        grad_flat[index] = (plus - minus) / (2 * EPSILON)
    return grad


def check_model(model, direction, candidates, seed=0):
    rng = np.random.default_rng(seed)
    params = model.init_params(NUM_ENTITIES, NUM_RELATIONS, DIMENSION, rng=rng, scale=0.5)
    queries = np.array([[0, 0], [3, 1], [5, 2]])
    num_candidates = NUM_ENTITIES if candidates is None else len(candidates)
    dscores = rng.normal(size=(queries.shape[0], num_candidates))
    analytic = model.grad_candidates(params, queries, dscores, direction=direction, candidates=candidates)
    for key in params:
        numeric = numerical_gradient(model, params, queries, dscores, direction, candidates, key)
        np.testing.assert_allclose(
            analytic[key], numeric, rtol=1e-4, atol=1e-6,
            err_msg=f"{model.name} gradient mismatch for {key!r} ({direction})",
        )


SMOOTH_MODELS = [DistMult, ComplEx, Analogy, SimplE, RESCAL, MLPScoringFunction]


@pytest.mark.parametrize("model_class", SMOOTH_MODELS)
@pytest.mark.parametrize("direction", [TAIL, HEAD])
def test_smooth_models_full_candidates(model_class, direction):
    check_model(model_class(), direction, candidates=None)


@pytest.mark.parametrize("model_class", SMOOTH_MODELS)
def test_smooth_models_candidate_subset(model_class):
    check_model(model_class(), TAIL, candidates=np.array([1, 4, 6]))


@pytest.mark.parametrize("direction", [TAIL, HEAD])
def test_transe_l2_gradient(direction):
    # The squared-L2 variant is smooth everywhere, so finite differences apply.
    check_model(TransE(norm=2), direction, candidates=None)


@pytest.mark.parametrize("direction", [TAIL, HEAD])
def test_transe_l1_gradient(direction):
    # L1 is non-smooth only on a measure-zero set; random floats avoid it.
    check_model(TransE(norm=1), direction, candidates=None, seed=3)


@pytest.mark.parametrize("direction", [TAIL, HEAD])
def test_rotate_gradient(direction):
    check_model(RotatE(), direction, candidates=None, seed=5)


def test_random_block_structures_gradients():
    """Gradients must be correct for arbitrary searched structures, not just classical ones."""
    rng = np.random.default_rng(11)
    for attempt in range(3):
        structure = random_structure(6, rng=rng, require_c2=True)
        assert structure is not None
        model = BlockScoringFunction(structure)
        check_model(model, TAIL if attempt % 2 == 0 else HEAD, candidates=None, seed=attempt)


def test_gradient_accumulates_duplicate_queries():
    """Repeated entities in a batch must accumulate (np.add.at semantics)."""
    model = DistMult()
    params = model.init_params(NUM_ENTITIES, NUM_RELATIONS, DIMENSION, rng=0, scale=0.5)
    queries = np.array([[0, 0], [0, 0]])  # same query twice
    dscores = np.ones((2, NUM_ENTITIES))
    grads = model.grad_candidates(params, queries, dscores, direction=TAIL)
    single = model.grad_candidates(params, queries[:1], dscores[:1], direction=TAIL)
    np.testing.assert_allclose(grads["relations"], 2 * single["relations"])


def test_dscores_shape_validated():
    model = DistMult()
    params = model.init_params(NUM_ENTITIES, NUM_RELATIONS, DIMENSION, rng=0)
    with pytest.raises(ValueError):
        model.grad_candidates(params, np.array([[0, 0]]), np.zeros((2, NUM_ENTITIES)))
