"""Cross-checks: block structures vs. the textbook formulas of classical SFs.

These tests are the ground truth for the unified search space: the block
representation of DistMult / ComplEx / Analogy / SimplE must reproduce the
original formulas exactly (Eqs. 3–6 of the paper).
"""

import numpy as np
import pytest

from repro.kge.scoring.blocks import (
    analogy_structure,
    complex_structure,
    distmult_structure,
    simple_structure,
)

DIMENSION = 16  # total embedding dimension (4 chunks of 4)
CHUNK = DIMENSION // 4


@pytest.fixture()
def embeddings(rng):
    h = rng.normal(size=DIMENSION)
    r = rng.normal(size=DIMENSION)
    t = rng.normal(size=DIMENSION)
    return h, r, t


def chunks(vector):
    return [vector[i * CHUNK : (i + 1) * CHUNK] for i in range(4)]


class TestDistMult:
    def test_matches_triple_dot_product(self, embeddings):
        h, r, t = embeddings
        expected = float(np.sum(h * r * t))
        assert distmult_structure().score(h, r, t) == pytest.approx(expected)

    def test_symmetric_in_head_and_tail(self, embeddings):
        h, r, t = embeddings
        structure = distmult_structure()
        assert structure.score(h, r, t) == pytest.approx(structure.score(t, r, h))


class TestComplEx:
    def test_matches_complex_formula(self, embeddings):
        """Re(<h, r, conj(t)>) with chunks (1,3) and (2,4) as (real, imag) pairs."""
        h, r, t = embeddings
        h1, h2, h3, h4 = chunks(h)
        r1, r2, r3, r4 = chunks(r)
        t1, t2, t3, t4 = chunks(t)
        # Complex vectors: (h1 + i h3) with relation (r1 + i r3), plus the
        # second pair (h2 + i h4) / (r2 + i r4), per Eq. (3).
        h_c = np.concatenate([h1, h2]) + 1j * np.concatenate([h3, h4])
        r_c = np.concatenate([r1, r2]) + 1j * np.concatenate([r3, r4])
        t_c = np.concatenate([t1, t2]) + 1j * np.concatenate([t3, t4])
        expected = float(np.real(np.sum(h_c * r_c * np.conj(t_c))))
        assert complex_structure().score(h, r, t) == pytest.approx(expected)

    def test_not_symmetric_in_general(self, embeddings):
        h, r, t = embeddings
        structure = complex_structure()
        assert structure.score(h, r, t) != pytest.approx(structure.score(t, r, h))

    def test_symmetric_when_imaginary_part_zero(self, embeddings):
        h, r, t = embeddings
        r_real = r.copy()
        r_real[2 * CHUNK :] = 0.0  # zero both imaginary relation chunks
        structure = complex_structure()
        assert structure.score(h, r_real, t) == pytest.approx(structure.score(t, r_real, h))


class TestSimplE:
    def test_matches_simple_formula(self, embeddings):
        """<h_hat, r_hat, t_breve> + <h_breve, r_breve, t_hat> (Eq. 6).

        In the four-chunk layout, (chunk 1, chunk 2) form the "hat" half and
        (chunk 3, chunk 4) the "breve" half.
        """
        h, r, t = embeddings
        h1, h2, h3, h4 = chunks(h)
        r1, r2, r3, r4 = chunks(r)
        t1, t2, t3, t4 = chunks(t)
        h_hat, h_breve = np.concatenate([h1, h2]), np.concatenate([h3, h4])
        r_hat, r_breve = np.concatenate([r1, r2]), np.concatenate([r3, r4])
        t_hat, t_breve = np.concatenate([t1, t2]), np.concatenate([t3, t4])
        expected = float(np.sum(h_hat * r_hat * t_breve) + np.sum(h_breve * r_breve * t_hat))
        assert simple_structure().score(h, r, t) == pytest.approx(expected)

    def test_inverse_relation_representable(self, embeddings):
        """Swapping the two relation halves scores the reversed triple equally."""
        h, r, t = embeddings
        r_swapped = np.concatenate([r[2 * CHUNK :], r[: 2 * CHUNK]])
        structure = simple_structure()
        assert structure.score(h, r, t) == pytest.approx(structure.score(t, r_swapped, h))


class TestAnalogy:
    def test_matches_analogy_formula(self, embeddings):
        """<h_hat, r_hat, t_hat> + Re(<h_breve, r_breve, conj(t_breve)>) (Eq. 5)."""
        h, r, t = embeddings
        h1, h2, h3, h4 = chunks(h)
        r1, r2, r3, r4 = chunks(r)
        t1, t2, t3, t4 = chunks(t)
        real_part = float(np.sum(h1 * r1 * t1) + np.sum(h2 * r2 * t2))
        h_c, r_c, t_c = h3 + 1j * h4, r3 + 1j * r4, t3 + 1j * t4
        complex_part = float(np.real(np.sum(h_c * r_c * np.conj(t_c))))
        assert analogy_structure().score(h, r, t) == pytest.approx(real_part + complex_part)


class TestRelationMatrixShapes:
    @pytest.mark.parametrize(
        "structure_factory",
        [distmult_structure, complex_structure, analogy_structure, simple_structure],
    )
    def test_relation_matrix_reproduces_score(self, structure_factory, embeddings):
        h, r, t = embeddings
        structure = structure_factory()
        np.testing.assert_allclose(
            structure.score(h, r, t), h @ structure.relation_matrix(r) @ t, rtol=1e-10
        )
