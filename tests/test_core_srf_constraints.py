"""Tests for symmetry-related features, expressiveness and constraints."""

import numpy as np
import pytest

from repro.core.constraints import check_structure, satisfies_c1, satisfies_c2
from repro.core.invariance import entity_permutation, relation_permutation, sign_flip
from repro.core.srf import (
    NUM_SRF_CASES,
    ONEHOT_DIMENSION,
    SRF_DIMENSION,
    can_be_skew_symmetric,
    can_be_symmetric,
    case_feature,
    is_expressive,
    onehot_features,
    srf_feature_names,
    srf_features,
    srf_summary,
)
from repro.kge.scoring import BlockStructure, classical_structure


class TestSRFBasics:
    def test_dimension(self):
        assert SRF_DIMENSION == 22
        features = srf_features(classical_structure("complex"))
        assert features.shape == (22,)
        assert set(np.unique(features)).issubset({0.0, 1.0})

    def test_feature_names(self):
        names = srf_feature_names()
        assert len(names) == 22
        assert names[0] == "S1-sym"
        assert names[1] == "S1-skew"

    def test_summary_matches_features(self):
        structure = classical_structure("simple")
        summary = srf_summary(structure)
        features = srf_features(structure)
        assert [summary[name] for name in srf_feature_names()] == features.astype(int).tolist()

    def test_case_feature_bounds(self):
        with pytest.raises(IndexError):
            case_feature(classical_structure("distmult"), NUM_SRF_CASES)


class TestExpressiveness:
    """Table I: which relation types each classical SF can model."""

    def test_distmult_symmetric_only(self):
        distmult = classical_structure("distmult")
        assert can_be_symmetric(distmult)
        assert not can_be_skew_symmetric(distmult)
        assert not is_expressive(distmult)

    @pytest.mark.parametrize("name", ["complex", "analogy", "simple"])
    def test_expressive_models(self, name):
        structure = classical_structure(name)
        assert can_be_symmetric(structure)
        assert can_be_skew_symmetric(structure)
        assert is_expressive(structure)

    def test_single_asymmetric_block_not_symmetric(self):
        structure = BlockStructure([(0, 1, 0, 1)])
        assert not can_be_symmetric(structure)

    def test_single_diagonal_block_cannot_be_skew(self):
        structure = BlockStructure([(0, 0, 0, 1)])
        assert can_be_symmetric(structure)
        assert not can_be_skew_symmetric(structure)

    def test_off_diagonal_pair_with_opposite_signs_is_skew_capable(self):
        structure = BlockStructure([(0, 1, 0, 1), (1, 0, 0, -1)])
        assert can_be_skew_symmetric(structure)

    def test_skew_check_ignores_all_zero_assignment(self):
        """A structure is not 'skew-symmetric' just because r = 0 makes g = 0."""
        structure = BlockStructure([(0, 0, 0, 1), (1, 1, 1, 1)])
        assert not can_be_skew_symmetric(structure)


class TestSRFInvariance:
    """Proposition 2(i): SRFs are invariant on invariance-group orbits."""

    @pytest.mark.parametrize("name", ["distmult", "complex", "analogy", "simple"])
    def test_invariant_under_group_actions(self, name):
        structure = classical_structure(name)
        reference = srf_features(structure)
        transformed = sign_flip(
            relation_permutation(entity_permutation(structure, (3, 1, 0, 2)), (2, 0, 3, 1)),
            (-1, 1, 1, -1),
        )
        np.testing.assert_array_equal(srf_features(transformed), reference)

    def test_different_models_have_different_srf(self):
        assert not np.array_equal(
            srf_features(classical_structure("distmult")), srf_features(classical_structure("complex"))
        )


class TestOneHotFeatures:
    def test_dimension_and_sparsity(self):
        structure = classical_structure("complex")
        features = onehot_features(structure)
        assert features.shape == (ONEHOT_DIMENSION,)
        assert features.sum() == 16  # one active value per cell

    def test_not_invariant_under_permutation(self):
        """One-hot features change under equivalent transformations (why SRF wins)."""
        structure = classical_structure("simple")
        permuted = entity_permutation(structure, (1, 0, 3, 2))
        assert not np.array_equal(onehot_features(structure), onehot_features(permuted))


class TestConstraints:
    def test_classical_models_satisfy_c2(self):
        for name in ("distmult", "complex", "analogy", "simple"):
            assert satisfies_c2(classical_structure(name))

    def test_zero_row_detected(self):
        structure = BlockStructure([(0, 0, 0, 1), (0, 1, 1, 1), (1, 2, 2, 1), (2, 3, 3, 1)])
        report = check_structure(structure, check_expressiveness=False)
        assert not report.no_zero_rows
        assert not report.satisfies_c2
        assert "zero row" in report.violations()

    def test_zero_column_detected(self):
        structure = BlockStructure([(0, 0, 0, 1), (1, 0, 1, 1), (2, 1, 2, 1), (3, 2, 3, 1)])
        report = check_structure(structure, check_expressiveness=False)
        assert not report.no_zero_columns

    def test_missing_component_detected(self):
        structure = BlockStructure([(i, i, 0, 1) for i in range(4)])
        report = check_structure(structure, check_expressiveness=False)
        assert not report.covers_all_components
        assert "unused relation chunk" in report.violations()

    def test_repeated_rows_detected(self):
        # Rows 0 and 1 both have +r1 in column 0/1 respectively... construct
        # genuinely identical rows: same values in the same columns.
        structure = BlockStructure(
            [(0, 0, 0, 1), (1, 0, 0, 1), (0, 1, 1, 1), (1, 1, 1, 1), (2, 2, 2, 1), (3, 3, 3, 1)]
        )
        report = check_structure(structure, check_expressiveness=False)
        assert not report.no_repeated_rows

    def test_satisfies_c1_and_c2_for_complex(self):
        structure = classical_structure("complex")
        assert satisfies_c1(structure)
        report = check_structure(structure)
        assert report.satisfies_all
        assert report.violations() == []

    def test_distmult_fails_c1_only(self):
        report = check_structure(classical_structure("distmult"))
        assert report.satisfies_c2
        assert not report.satisfies_c1
        assert "cannot be skew-symmetric" in report.violations()
