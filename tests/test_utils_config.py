"""Tests for the configuration dataclasses."""

import pytest

from repro.utils.config import PredictorConfig, SearchConfig, TrainingConfig


class TestTrainingConfig:
    def test_defaults_valid(self):
        config = TrainingConfig()
        assert config.dimension % 4 == 0
        assert config.chunk_dimension == config.dimension // 4

    def test_dimension_not_divisible_by_four(self):
        with pytest.raises(ValueError):
            TrainingConfig(dimension=10)

    def test_negative_dimension(self):
        with pytest.raises(ValueError):
            TrainingConfig(dimension=-4)

    def test_bad_optimizer(self):
        with pytest.raises(ValueError):
            TrainingConfig(optimizer="rmsprop")

    def test_bad_loss(self):
        with pytest.raises(ValueError):
            TrainingConfig(loss="mse")

    def test_bad_decay_rate(self):
        with pytest.raises(ValueError):
            TrainingConfig(decay_rate=0.0)
        with pytest.raises(ValueError):
            TrainingConfig(decay_rate=1.5)

    def test_bad_learning_rate(self):
        with pytest.raises(ValueError):
            TrainingConfig(learning_rate=0.0)

    def test_bad_batch_size(self):
        with pytest.raises(ValueError):
            TrainingConfig(batch_size=0)

    def test_replace_keeps_other_fields(self):
        config = TrainingConfig(dimension=32, epochs=10)
        changed = config.replace(epochs=20)
        assert changed.epochs == 20
        assert changed.dimension == 32
        assert config.epochs == 10  # original untouched

    def test_round_trip_dict(self):
        config = TrainingConfig(dimension=16, learning_rate=0.3)
        assert TrainingConfig.from_dict(config.to_dict()) == config


class TestPredictorConfig:
    def test_defaults(self):
        config = PredictorConfig()
        assert config.feature_type == "srf"
        assert config.hidden_units == 2

    def test_bad_feature_type(self):
        with pytest.raises(ValueError):
            PredictorConfig(feature_type="bagofwords")

    def test_bad_hidden_units(self):
        with pytest.raises(ValueError):
            PredictorConfig(hidden_units=0)

    def test_round_trip(self):
        config = PredictorConfig(feature_type="onehot", hidden_units=8)
        assert PredictorConfig.from_dict(config.to_dict()) == config


class TestSearchConfig:
    def test_defaults(self):
        config = SearchConfig()
        assert config.max_blocks >= 4
        assert isinstance(config.predictor, PredictorConfig)

    def test_odd_max_blocks(self):
        with pytest.raises(ValueError):
            SearchConfig(max_blocks=7)

    def test_too_small_max_blocks(self):
        with pytest.raises(ValueError):
            SearchConfig(max_blocks=2)

    def test_bad_counts(self):
        with pytest.raises(ValueError):
            SearchConfig(candidates_per_step=0)
        with pytest.raises(ValueError):
            SearchConfig(top_parents=0)
        with pytest.raises(ValueError):
            SearchConfig(train_per_step=0)

    def test_predictor_dict_coerced(self):
        config = SearchConfig(predictor={"feature_type": "onehot", "hidden_units": 4})
        assert isinstance(config.predictor, PredictorConfig)
        assert config.predictor.hidden_units == 4

    def test_round_trip_dict(self):
        config = SearchConfig(max_blocks=8, candidates_per_step=32)
        rebuilt = SearchConfig.from_dict(config.to_dict())
        assert rebuilt.max_blocks == 8
        assert rebuilt.candidates_per_step == 32
        assert isinstance(rebuilt.predictor, PredictorConfig)
