"""Tests for relation-pattern classification (the Table III counting rule)."""

import numpy as np
import pytest

from repro.datasets import KnowledgeGraph
from repro.datasets.statistics import (
    RelationPattern,
    classify_relations,
    dataset_statistics,
    pattern_fractions,
)


def triples_array(pairs, relation):
    return np.asarray([(h, relation, t) for h, t in pairs], dtype=np.int64)


class TestClassifyRelations:
    def test_symmetric_relation(self):
        pairs = [(0, 1), (1, 0), (2, 3), (3, 2), (4, 5), (5, 4)]
        patterns, _ = classify_relations(triples_array(pairs, 0), num_relations=1)
        assert patterns[0] is RelationPattern.SYMMETRIC

    def test_anti_symmetric_relation(self):
        # A strict chain on one entity "type": reverse edges never present,
        # heads and tails overlap heavily.
        pairs = [(0, 1), (1, 2), (2, 3), (3, 4), (0, 2), (1, 3)]
        patterns, _ = classify_relations(triples_array(pairs, 0), num_relations=1)
        assert patterns[0] is RelationPattern.ANTI_SYMMETRIC

    def test_general_relation_disjoint_types(self):
        pairs = [(0, 10), (1, 11), (2, 12), (3, 13)]
        patterns, _ = classify_relations(triples_array(pairs, 0), num_relations=1)
        assert patterns[0] is RelationPattern.GENERAL

    def test_inverse_pair_detected(self):
        forward = [(0, 10), (1, 11), (2, 12)]
        backward = [(10, 0), (11, 1), (12, 2)]
        triples = np.concatenate([triples_array(forward, 0), triples_array(backward, 1)])
        patterns, pairs = classify_relations(triples, num_relations=2)
        assert patterns[0] is RelationPattern.INVERSE
        assert patterns[1] is RelationPattern.INVERSE
        assert (0, 1) in pairs

    def test_partial_inverse_below_threshold_not_detected(self):
        forward = [(0, 10), (1, 11), (2, 12), (3, 13), (4, 14)]
        # Only half of the second relation's reversed pairs appear under the
        # first relation (and vice versa far less), so neither side reaches
        # the 0.9 threshold of the paper's counting rule.
        backward = [(10, 0), (7, 3)]
        triples = np.concatenate([triples_array(forward, 0), triples_array(backward, 1)])
        _, pairs = classify_relations(triples, num_relations=2)
        assert (0, 1) not in pairs

    def test_small_relation_fully_reversed_in_large_one_is_inverse(self):
        # The paper's rule is per-relation: a small relation whose reversed
        # pairs all appear under another relation counts as an inverse pair,
        # even if the larger relation is mostly independent of it.
        forward = [(0, 10), (1, 11), (2, 12), (3, 13), (4, 14)]
        backward = [(10, 0)]
        triples = np.concatenate([triples_array(forward, 0), triples_array(backward, 1)])
        _, pairs = classify_relations(triples, num_relations=2)
        assert (0, 1) in pairs

    def test_mostly_symmetric_meets_threshold(self):
        pairs = [(0, 1), (1, 0), (2, 3), (3, 2), (4, 5), (5, 4), (6, 7), (7, 6), (8, 9), (9, 8)]
        # 10 pairs, all reversed -> symmetric even with threshold 0.9.
        patterns, _ = classify_relations(triples_array(pairs, 0), num_relations=1)
        assert patterns[0] is RelationPattern.SYMMETRIC

    def test_relation_with_no_triples_is_general(self):
        patterns, _ = classify_relations(triples_array([(0, 1)], 0), num_relations=3)
        assert patterns[1] is RelationPattern.GENERAL
        assert patterns[2] is RelationPattern.GENERAL

    def test_thresholds_configurable(self):
        # Half the pairs reversed: symmetric only if the threshold is lowered.
        pairs = [(0, 1), (1, 0), (2, 3), (4, 5)]
        strict, _ = classify_relations(triples_array(pairs, 0), 1, symmetric_threshold=0.9)
        relaxed, _ = classify_relations(triples_array(pairs, 0), 1, symmetric_threshold=0.4)
        assert strict[0] is not RelationPattern.SYMMETRIC
        assert relaxed[0] is RelationPattern.SYMMETRIC


class TestDatasetStatistics:
    def test_counts_sum_to_num_relations(self, tiny_graph):
        statistics = dataset_statistics(tiny_graph)
        assert sum(statistics.pattern_counts.values()) == tiny_graph.num_relations

    def test_as_row_keys(self, tiny_graph):
        row = dataset_statistics(tiny_graph).as_row()
        for key in ("entities", "relations", "train", "valid", "test", "symmetric",
                    "anti_symmetric", "inverse", "general"):
            assert key in row

    def test_pattern_fractions_sum_to_one(self, tiny_graph):
        statistics = dataset_statistics(tiny_graph)
        fractions = pattern_fractions(statistics)
        assert sum(fractions.values()) == pytest.approx(1.0)

    def test_statistics_name_matches_graph(self, tiny_graph):
        assert dataset_statistics(tiny_graph).name == tiny_graph.name

    def test_count_missing_pattern_is_zero(self):
        graph = KnowledgeGraph(
            num_entities=4,
            num_relations=1,
            train=[(0, 0, 1), (1, 0, 0), (2, 0, 3), (3, 0, 2)],
            valid=[],
            test=[],
        )
        statistics = dataset_statistics(graph)
        assert statistics.count(RelationPattern.SYMMETRIC) == 1
        assert statistics.count(RelationPattern.INVERSE) == 0
