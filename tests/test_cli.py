"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.datasets import write_tsv_dataset
from repro.experiments import DatasetSpec, ExperimentSpec, SearchSpec
from repro.utils.config import PredictorConfig, TrainingConfig


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["train"])
        assert args.benchmark == "wn18rr"
        assert args.model == "simple"
        assert args.dimension == 32

    def test_unknown_model_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["train", "--model", "gpt"])

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["stats", "--benchmark", "dbpedia"])

    def test_search_options(self):
        args = build_parser().parse_args(
            ["search", "--max-blocks", "8", "--budget", "7", "--candidates", "12"]
        )
        assert args.max_blocks == 8
        assert args.budget == 7
        assert args.candidates == 12

    def test_search_engine_options(self):
        args = build_parser().parse_args(
            ["search", "--backend", "process", "--workers", "4", "--cache-dir", "runs/a"]
        )
        assert args.backend == "process"
        assert args.workers == 4
        assert args.cache_dir == "runs/a"
        assert args.resume is None

    def test_unknown_backend_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["search", "--backend", "threads"])


class TestCommands:
    def test_stats_on_benchmark(self, capsys):
        exit_code = main(["stats", "--benchmark", "wn18rr", "--scale", "0.3"])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "Relation-pattern statistics" in captured
        assert "wn18rr-mini" in captured

    def test_stats_on_tsv_directory(self, tiny_graph, tmp_path, capsys):
        directory = write_tsv_dataset(tiny_graph, tmp_path / "dump")
        exit_code = main(["stats", "--data", str(directory)])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "symmetric" in captured

    def test_train_and_save(self, tmp_path, capsys):
        exit_code = main(
            [
                "train",
                "--benchmark", "wn18rr",
                "--scale", "0.25",
                "--model", "distmult",
                "--dimension", "8",
                "--epochs", "3",
                "--batch-size", "128",
                "--save", str(tmp_path / "model"),
            ]
        )
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "distmult on wn18rr-mini" in captured
        assert (tmp_path / "model" / "params.npz").exists()

    def test_search_with_small_budget(self, capsys):
        exit_code = main(
            [
                "search",
                "--benchmark", "wn18rr",
                "--scale", "0.25",
                "--dimension", "8",
                "--epochs", "3",
                "--batch-size", "128",
                "--budget", "5",
                "--candidates", "6",
                "--train-per-step", "2",
            ]
        )
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "searched scoring function" in captured
        assert "any-time best validation MRR" in captured

    def test_search_cache_dir_then_resume(self, tmp_path, capsys):
        run_dir = tmp_path / "run"
        common = [
            "search",
            "--benchmark", "wn18rr",
            "--scale", "0.2",
            "--dimension", "8",
            "--epochs", "3",
            "--batch-size", "128",
            "--budget", "4",
            "--candidates", "6",
            "--train-per-step", "2",
        ]
        exit_code = main(common + ["--cache-dir", str(run_dir)])
        first = capsys.readouterr().out
        assert exit_code == 0
        assert (run_dir / "run_config.json").exists()
        assert list((run_dir / "evaluations").glob("*.json"))

        exit_code = main(["search", "--resume", str(run_dir)])
        second = capsys.readouterr().out
        assert exit_code == 0
        assert f"resuming search for wn18rr-mini from {run_dir}" in second
        assert "trained 0 models this run" in second

        def mrr_line(output):
            return [line for line in output.splitlines() if "any-time best" in line][-1]

        assert mrr_line(first) == mrr_line(second)

    def test_resume_without_manifest_fails(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["search", "--resume", str(tmp_path / "nowhere")])


def _write_spec(tmp_path, name, strategy, budget=4):
    spec = ExperimentSpec(
        name=name,
        seed=0,
        dataset=DatasetSpec(benchmark="wn18rr", scale=0.2, seed=0),
        training=TrainingConfig(dimension=8, epochs=3, batch_size=128, learning_rate=0.5),
        search=SearchSpec(
            strategy=strategy, budget=budget, candidates_per_step=6,
            top_parents=3, train_per_step=2, num_blocks=6,
        ),
        predictor=PredictorConfig(epochs=50),
    )
    return spec.save(tmp_path / f"{name}.json")


class TestExperimentCommands:
    def test_run_then_compare_then_export(self, tmp_path, capsys):
        greedy_spec = _write_spec(tmp_path, "cli-greedy", "greedy")
        random_spec = _write_spec(tmp_path, "cli-random", "random")
        greedy_dir = tmp_path / "run-greedy"
        random_dir = tmp_path / "run-random"

        assert main(["run", str(greedy_spec), "--run-dir", str(greedy_dir)]) == 0
        first = capsys.readouterr().out
        assert "cli-greedy" in first
        assert "any-time best validation MRR" in first
        assert (greedy_dir / "spec.json").exists()
        assert (greedy_dir / "report.json").exists()
        assert (greedy_dir / "history.jsonl").exists()
        assert (greedy_dir / "best" / "params.npz").exists()

        assert main(["run", str(random_spec), "--run-dir", str(random_dir)]) == 0
        capsys.readouterr()

        assert main(["compare", str(greedy_dir), str(random_dir)]) == 0
        compared = capsys.readouterr().out
        assert "Experiment comparison" in compared
        assert "cli-greedy" in compared and "cli-random" in compared
        assert "model#" in compared

        artifact = tmp_path / "artifact"
        assert main(["export", "--run", str(greedy_dir), "--output", str(artifact)]) == 0
        exported = capsys.readouterr().out
        assert "artifact exported" in exported
        assert (artifact / "manifest.json").exists()

    def test_run_resumes_existing_directory(self, tmp_path, capsys):
        spec = _write_spec(tmp_path, "cli-resume", "random", budget=3)
        run_dir = tmp_path / "run"
        main(["run", str(spec), "--run-dir", str(run_dir)])
        capsys.readouterr()
        assert main(["run", str(spec), "--run-dir", str(run_dir)]) == 0
        resumed = capsys.readouterr().out
        trained_column = [
            line for line in resumed.splitlines() if line.startswith("random")
        ][0].split()
        assert trained_column[3] == "0"  # strategy dataset evaluations trained ...

    def test_run_budget_override(self, tmp_path, capsys):
        spec = _write_spec(tmp_path, "cli-budget", "random", budget=4)
        run_dir = tmp_path / "run"
        assert main(["run", str(spec), "--run-dir", str(run_dir), "--budget", "2"]) == 0
        out = capsys.readouterr().out
        assert [line for line in out.splitlines() if line.startswith("random")][0].split()[2] == "2"

    def test_run_obs_writes_telemetry_and_trace_subcommand_reads_it(
        self, tmp_path, capsys
    ):
        spec = _write_spec(tmp_path, "cli-obs", "random", budget=3)
        run_dir = tmp_path / "run"
        assert main(["run", str(spec), "--run-dir", str(run_dir), "--obs"]) == 0
        out = capsys.readouterr().out
        assert "telemetry" in out
        assert (run_dir / "metrics.json").exists()
        assert list((run_dir / "trace").glob("trace-*.jsonl"))

        assert main(["trace", "summarize", str(run_dir)]) == 0
        summarized = capsys.readouterr().out
        assert "search.candidate" in summarized
        assert "train.epoch" in summarized

        assert main(["trace", "merge", str(run_dir)]) == 0
        merged = capsys.readouterr().out
        assert "merged" in merged
        assert (run_dir / "trace" / "trace.jsonl").exists()

    def test_run_without_obs_writes_no_telemetry(self, tmp_path, capsys):
        spec = _write_spec(tmp_path, "cli-no-obs", "random", budget=2)
        run_dir = tmp_path / "run"
        assert main(["run", str(spec), "--run-dir", str(run_dir)]) == 0
        capsys.readouterr()
        assert not (run_dir / "metrics.json").exists()
        assert not (run_dir / "trace").exists()

    def test_trace_without_telemetry_fails(self, tmp_path):
        (tmp_path / "empty").mkdir()
        with pytest.raises(SystemExit, match="no trace files"):
            main(["trace", "summarize", str(tmp_path / "empty")])

    def test_run_missing_spec_fails(self, tmp_path):
        with pytest.raises(SystemExit, match="cannot read"):
            main(["run", str(tmp_path / "nowhere.json")])

    def test_run_unknown_strategy_fails(self, tmp_path):
        path = _write_spec(tmp_path, "cli-bad", "random")
        data = path.read_text().replace('"random"', '"quantum"')
        path.write_text(data)
        with pytest.raises(SystemExit, match="quantum"):
            main(["run", str(path), "--run-dir", str(tmp_path / "run")])

    def test_compare_rejects_non_run_directory(self, tmp_path):
        (tmp_path / "junk").mkdir()
        with pytest.raises(SystemExit, match="missing manifest.json"):
            main(["compare", str(tmp_path / "junk")])

    def test_export_requires_exactly_one_source(self, tmp_path):
        with pytest.raises(SystemExit, match="exactly one"):
            main(["export", "--output", str(tmp_path / "out")])


class TestServingCommands:
    @pytest.fixture()
    def saved_model(self, tmp_path):
        target = tmp_path / "model"
        main(
            [
                "train",
                "--benchmark", "wn18rr",
                "--scale", "0.25",
                "--model", "distmult",
                "--dimension", "8",
                "--epochs", "2",
                "--batch-size", "128",
                "--save", str(target),
            ]
        )
        return target

    def test_export_then_query(self, saved_model, tmp_path, capsys):
        artifact = tmp_path / "artifact"
        exit_code = main(
            ["export", "--model", str(saved_model), "--output", str(artifact)]
        )
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "artifact exported" in captured
        assert (artifact / "manifest.json").exists()
        assert (artifact / "params" / "entities.npy").exists()

        queries = tmp_path / "queries.tsv"
        queries.write_text("0\t0\t?\n?\t1\t2\n", encoding="utf-8")
        exit_code = main(
            [
                "query",
                "--artifact", str(artifact),
                "--queries", str(queries),
                "--top-k", "3",
            ]
        )
        captured = capsys.readouterr().out
        assert exit_code == 0
        lines = [line for line in captured.splitlines() if line and not line.startswith("#")]
        assert lines[0].startswith("direction\t")
        assert len(lines) == 1 + 2 * 3  # header + two queries x top-3

    def test_export_with_metrics(self, saved_model, tmp_path, capsys):
        artifact = tmp_path / "artifact_metrics"
        exit_code = main(
            [
                "export",
                "--model", str(saved_model),
                "--output", str(artifact),
                "--with-metrics",
                "--benchmark", "wn18rr",
                "--scale", "0.25",
            ]
        )
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "test_mrr" in captured

    def test_export_with_metrics_rejects_mismatched_dataset(self, saved_model, tmp_path):
        # The model was trained at --scale 0.25; the default --scale 0.5
        # dataset has a different vocabulary and must be rejected up front,
        # not crash mid-evaluation.
        with pytest.raises(SystemExit, match="does not match"):
            main(
                [
                    "export",
                    "--model", str(saved_model),
                    "--output", str(tmp_path / "out"),
                    "--with-metrics",
                    "--benchmark", "wn18rr",
                ]
            )

    def test_export_missing_model_fails(self, tmp_path):
        with pytest.raises(SystemExit, match="cannot load model"):
            main(["export", "--model", str(tmp_path / "nowhere"), "--output", str(tmp_path / "out")])

    def test_query_missing_artifact_fails(self, tmp_path):
        queries = tmp_path / "queries.tsv"
        queries.write_text("0\t0\t?\n", encoding="utf-8")
        with pytest.raises(SystemExit, match="does not exist"):
            main(["query", "--artifact", str(tmp_path / "nowhere"), "--queries", str(queries)])

    def test_query_filter_rejects_mismatched_dataset(self, saved_model, tmp_path, capsys):
        artifact = tmp_path / "artifact"
        main(["export", "--model", str(saved_model), "--output", str(artifact)])
        capsys.readouterr()
        queries = tmp_path / "queries.tsv"
        queries.write_text("0\t0\t?\n", encoding="utf-8")
        # The model was trained at --scale 0.25; the default --scale 0.5
        # dataset has a different vocabulary and must be rejected.
        with pytest.raises(SystemExit, match="does not match the artifact"):
            main(
                [
                    "query",
                    "--artifact", str(artifact),
                    "--queries", str(queries),
                    "--filter",
                    "--benchmark", "wn18rr",
                ]
            )
