"""Property-based tests (hypothesis) for negative sampling.

Covers the two negative generators the correctness sweep of PR 2 hardened:

* :class:`repro.kge.negative_sampling.NegativeSampler` subclasses — drawn
  negatives never collide with their positives (including the exhaustive
  masked-draw fallback on tiny vocabularies) and are bit-reproducible under
  a fixed seed;
* :func:`repro.kge.evaluation.generate_classification_negatives` — emitted
  negatives are never known positives whenever a true negative exists, the
  construction is seed-reproducible, and the exhaustive-fallback path is
  exercised on tiny, dense graphs.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.datasets.knowledge_graph import KnowledgeGraph
from repro.kge.evaluation import generate_classification_negatives
from repro.kge.negative_sampling import BernoulliNegativeSampler, UniformNegativeSampler

pytestmark = pytest.mark.property  # tier 2: run with --runslow

_settings = settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])


def _dense_graph(num_entities: int, num_relations: int, seed: int) -> KnowledgeGraph:
    """A small random graph with every entity/relation appearing in train."""
    rng = np.random.default_rng(seed)
    base = np.stack(
        [
            np.arange(num_entities, dtype=np.int64),
            np.arange(num_entities, dtype=np.int64) % num_relations,
            rng.integers(0, num_entities, size=num_entities),
        ],
        axis=1,
    )
    extra_count = max(num_entities, 2 * num_relations)
    extra = np.stack(
        [
            rng.integers(0, num_entities, size=extra_count),
            np.arange(extra_count, dtype=np.int64) % num_relations,
            rng.integers(0, num_entities, size=extra_count),
        ],
        axis=1,
    )
    triples = np.unique(np.concatenate([base, extra]), axis=0)
    split = max(1, triples.shape[0] - 4)
    return KnowledgeGraph(
        num_entities=num_entities,
        num_relations=num_relations,
        train=triples[:split],
        valid=triples[split : split + 2],
        test=triples[split + 2 :],
        name="property-graph",
    )


class TestSamplerProperties:
    @given(
        num_entities=st.integers(min_value=2, max_value=40),
        num_negatives=st.integers(min_value=1, max_value=24),
        batch=st.integers(min_value=1, max_value=48),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    @_settings
    def test_uniform_never_collides(self, num_entities, num_negatives, batch, seed):
        sampler = UniformNegativeSampler(num_entities, num_negatives, rng=seed)
        positives = np.random.default_rng(seed).integers(0, num_entities, size=batch)
        negatives = sampler.sample(positives)
        assert negatives.shape == (batch, num_negatives)
        assert (negatives >= 0).all() and (negatives < num_entities).all()
        assert not (negatives == positives[:, None]).any()

    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    @_settings
    def test_two_entity_vocabulary_forces_exhaustive_fallback(self, seed):
        """With 2 entities the only valid negative is `1 - positive`."""
        sampler = UniformNegativeSampler(2, 8, rng=seed)
        positives = np.random.default_rng(seed).integers(0, 2, size=16)
        negatives = sampler.sample(positives)
        np.testing.assert_array_equal(negatives, np.broadcast_to((1 - positives)[:, None], negatives.shape))

    @given(
        num_entities=st.integers(min_value=2, max_value=30),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    @_settings
    def test_reproducible_under_fixed_seed(self, num_entities, seed):
        positives = np.random.default_rng(seed + 1).integers(0, num_entities, size=20)
        first = UniformNegativeSampler(num_entities, 6, rng=seed).sample(positives)
        second = UniformNegativeSampler(num_entities, 6, rng=seed).sample(positives)
        np.testing.assert_array_equal(first, second)

    @given(
        num_entities=st.integers(min_value=4, max_value=30),
        num_relations=st.integers(min_value=1, max_value=5),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        consistent=st.floats(min_value=0.0, max_value=1.0),
    )
    @_settings
    def test_bernoulli_never_collides_and_reproduces(
        self, num_entities, num_relations, seed, consistent
    ):
        graph = _dense_graph(num_entities, num_relations, seed)
        positives = graph.train[:24, 2]
        relations = graph.train[:24, 1]
        first = BernoulliNegativeSampler(
            graph, 5, rng=seed, consistent_fraction=consistent
        ).sample(positives, relations=relations)
        second = BernoulliNegativeSampler(
            graph, 5, rng=seed, consistent_fraction=consistent
        ).sample(positives, relations=relations)
        assert not (first == positives[:, None]).any()
        assert (first >= 0).all() and (first < num_entities).all()
        np.testing.assert_array_equal(first, second)


class TestClassificationNegativeProperties:
    @given(
        num_entities=st.integers(min_value=3, max_value=24),
        num_relations=st.integers(min_value=1, max_value=4),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    @_settings
    def test_negatives_are_never_known_positives(self, num_entities, num_relations, seed):
        graph = _dense_graph(num_entities, num_relations, seed)
        known = graph.triple_set()
        with warnings.catch_warnings():
            # On a saturated triple the documented fallback warns and emits
            # the positive itself; the exact per-triple contract is below.
            warnings.simplefilter("ignore", RuntimeWarning)
            negatives = generate_classification_negatives(graph, "test", rng=seed)
        assert negatives.shape == graph.test.shape
        for row, (h, r, t) in zip(negatives, graph.test):
            h, r, t = int(h), int(r), int(t)
            a_true_negative_exists = any(
                (e, r, t) not in known for e in range(num_entities)
            ) or any((h, r, e) not in known for e in range(num_entities))
            triple = tuple(int(x) for x in row)
            if a_true_negative_exists:
                assert triple not in known
                # the relation is untouched and exactly one slot was corrupted
                assert triple[1] == r
                assert (triple[0] == h) != (triple[2] == t)
            else:
                assert triple == (h, r, t)  # documented warn-and-keep fallback

    @given(
        num_entities=st.integers(min_value=3, max_value=24),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    @_settings
    def test_reproducible_under_fixed_seed(self, num_entities, seed):
        graph = _dense_graph(num_entities, 2, seed)
        first = generate_classification_negatives(graph, "valid", rng=seed)
        second = generate_classification_negatives(graph, "valid", rng=seed)
        np.testing.assert_array_equal(first, second)

    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    @_settings
    def test_exhaustive_fallback_on_tiny_vocabulary(self, seed):
        """3 entities, near-complete relation: retries exhaust, enumeration wins.

        Every corruption of most triples is a known positive except very
        few — the bounded retry loop frequently misses them, so the
        exhaustive enumeration must still find the remaining true negative
        (and never emit a known positive silently).
        """
        entities = 3
        full = [
            (h, 0, t) for h in range(entities) for t in range(entities) if h != t
        ]
        graph = KnowledgeGraph(
            num_entities=entities,
            num_relations=1,
            train=np.asarray(full[:-1], dtype=np.int64),
            valid=np.asarray(full[-1:], dtype=np.int64),
            test=np.asarray(full[-1:], dtype=np.int64),
        )
        known = graph.triple_set()
        negatives = generate_classification_negatives(graph, "test", rng=seed)
        for row in negatives:
            triple = tuple(int(x) for x in row)
            # the only true negatives are the self-loops (h, 0, h)
            assert triple not in known
            assert triple[0] == triple[2]

    def test_warns_when_no_true_negative_exists(self):
        """A fully saturated graph cannot produce a negative: warn, keep positive."""
        entities = 2
        full = [(h, 0, t) for h in range(entities) for t in range(entities)]
        graph = KnowledgeGraph(
            num_entities=entities,
            num_relations=1,
            train=np.asarray(full[:-1], dtype=np.int64),
            valid=np.asarray(full[-1:], dtype=np.int64),
            test=np.asarray(full[-1:], dtype=np.int64),
        )
        with pytest.warns(RuntimeWarning, match="no true negative exists"):
            negatives = generate_classification_negatives(graph, "test", rng=0)
        np.testing.assert_array_equal(negatives, graph.test)
