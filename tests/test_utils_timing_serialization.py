"""Tests for timing helpers and JSON serialization."""

import time

import numpy as np
import pytest

from repro.utils.serialization import from_json_file, to_json_file, to_json_string
from repro.utils.timing import Stopwatch, TimingRecorder


class TestStopwatch:
    def test_measures_elapsed(self):
        watch = Stopwatch()
        watch.start()
        time.sleep(0.01)
        elapsed = watch.stop()
        assert elapsed >= 0.009

    def test_double_start_raises(self):
        watch = Stopwatch()
        watch.start()
        with pytest.raises(RuntimeError):
            watch.start()

    def test_stop_without_start_raises(self):
        with pytest.raises(RuntimeError):
            Stopwatch().stop()

    def test_accumulates_across_runs(self):
        watch = Stopwatch()
        for _ in range(2):
            watch.start()
            time.sleep(0.005)
            watch.stop()
        assert watch.elapsed >= 0.009

    def test_reset(self):
        watch = Stopwatch()
        watch.start()
        watch.stop()
        watch.reset()
        assert watch.elapsed == 0.0


class TestTimingRecorder:
    def test_measure_context(self):
        recorder = TimingRecorder()
        with recorder.measure("phase"):
            time.sleep(0.005)
        assert recorder.total("phase") >= 0.004
        assert recorder.count("phase") == 1

    def test_add_and_mean(self):
        recorder = TimingRecorder()
        recorder.add("x", 1.0)
        recorder.add("x", 3.0)
        assert recorder.mean("x") == pytest.approx(2.0)
        assert recorder.total("x") == pytest.approx(4.0)

    def test_last_returns_most_recent_sample(self):
        recorder = TimingRecorder()
        recorder.add("x", 1.0)
        recorder.add("x", 3.0)
        assert recorder.last("x") == pytest.approx(3.0)

    def test_last_raises_on_unknown_phase(self):
        recorder = TimingRecorder()
        with pytest.raises(KeyError):
            recorder.last("missing")

    def test_unknown_phase_defaults_to_zero(self):
        recorder = TimingRecorder()
        assert recorder.total("missing") == 0.0
        assert recorder.mean("missing") == 0.0
        assert recorder.count("missing") == 0

    def test_summary_structure(self):
        recorder = TimingRecorder()
        recorder.add("a", 1.0)
        recorder.add("b", 2.0)
        summary = recorder.summary()
        assert set(summary) == {"a", "b"}
        assert summary["b"]["total"] == pytest.approx(2.0)

    def test_summary_count_is_int(self):
        recorder = TimingRecorder()
        recorder.add("a", 1.0)
        recorder.add("a", 2.0)
        count = recorder.summary()["a"]["count"]
        assert count == 2
        assert isinstance(count, int)

    def test_merge_combines_samples(self):
        left = TimingRecorder()
        left.add("train", 1.0)
        right = TimingRecorder()
        right.add("train", 3.0)
        right.add("evaluate", 0.5)
        left.merge(right)
        assert left.count("train") == 2
        assert left.total("train") == pytest.approx(4.0)
        assert left.count("evaluate") == 1
        # The source recorder is untouched.
        assert right.count("train") == 1

    def test_measure_records_on_exception(self):
        recorder = TimingRecorder()
        with pytest.raises(RuntimeError):
            with recorder.measure("failing"):
                raise RuntimeError("boom")
        assert recorder.count("failing") == 1


class TestSerialization:
    def test_numpy_scalars(self):
        text = to_json_string({"a": np.int64(3), "b": np.float64(1.5), "c": np.bool_(True)})
        assert '"a": 3' in text
        assert '"b": 1.5' in text

    def test_numpy_array(self):
        text = to_json_string({"v": np.arange(3)})
        assert "[" in text

    def test_set_serialized_sorted(self):
        text = to_json_string({"s": {3, 1, 2}})
        assert "[\n    1,\n    2,\n    3\n  ]" in text or "[1, 2, 3]" in text.replace("\n  ", "").replace("\n", "")

    def test_file_round_trip(self, tmp_path):
        data = {"name": "test", "values": [1, 2, 3], "nested": {"x": 1.5}}
        path = to_json_file(data, tmp_path / "sub" / "data.json")
        assert path.exists()
        assert from_json_file(path) == data

    def test_unserializable_raises(self):
        with pytest.raises(TypeError):
            to_json_string({"f": lambda x: x})
