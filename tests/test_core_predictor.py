"""Tests for the performance predictor."""

import numpy as np
import pytest

from repro.core.predictor import PerformancePredictor, get_feature_extractor
from repro.core.search_space import enumerate_f4_structures, random_structure
from repro.core.srf import ONEHOT_DIMENSION, SRF_DIMENSION, can_be_skew_symmetric
from repro.kge.scoring import classical_structure
from repro.utils.config import PredictorConfig


@pytest.fixture(scope="module")
def structures():
    rng = np.random.default_rng(0)
    pool = list(enumerate_f4_structures())
    pool += [random_structure(6, rng=rng) for _ in range(20)]
    return [structure for structure in pool if structure is not None]


class TestFeatureExtractors:
    def test_srf_extractor(self):
        extractor, dimension = get_feature_extractor("srf")
        assert dimension == SRF_DIMENSION
        assert extractor(classical_structure("complex")).shape == (SRF_DIMENSION,)

    def test_onehot_extractor(self):
        extractor, dimension = get_feature_extractor("onehot")
        assert dimension == ONEHOT_DIMENSION

    def test_unknown_extractor(self):
        with pytest.raises(KeyError):
            get_feature_extractor("embedding")


class TestPredictorTraining:
    def test_untrained_flag(self):
        predictor = PerformancePredictor()
        assert not predictor.is_trained
        predictor.fit([classical_structure("complex")], [0.5])
        assert predictor.is_trained

    def test_fit_reduces_mse(self, structures):
        targets = np.linspace(0.1, 0.9, len(structures))
        weak = PerformancePredictor(PredictorConfig(epochs=1))
        strong = PerformancePredictor(PredictorConfig(epochs=500))
        assert strong.fit(structures, targets) <= weak.fit(structures, targets) + 1e-9

    def test_fit_length_mismatch(self, structures):
        with pytest.raises(ValueError):
            PerformancePredictor().fit(structures, [0.1])

    def test_fit_empty_is_noop(self):
        predictor = PerformancePredictor()
        assert predictor.fit([], []) == 0.0
        assert not predictor.is_trained

    def test_learns_srf_correlated_target(self, structures):
        """The predictor must learn a target that depends only on SRF properties.

        The synthetic target rewards skew-symmetric-capable structures — the
        kind of signal AutoSF needs the predictor to pick up (Proposition 2).
        """
        targets = [0.8 if can_be_skew_symmetric(s) else 0.2 for s in structures]
        predictor = PerformancePredictor(PredictorConfig(epochs=600, learning_rate=0.05))
        predictor.fit(structures, targets)
        correlation = predictor.ranking_correlation(structures, targets)
        assert correlation > 0.7

    def test_predictions_shape(self, structures):
        predictor = PerformancePredictor()
        predictor.fit(structures, np.linspace(0, 1, len(structures)))
        assert predictor.predict(structures).shape == (len(structures),)
        assert predictor.predict([]).shape == (0,)


class TestSelection:
    def test_select_top_returns_requested_count(self, structures):
        predictor = PerformancePredictor(PredictorConfig(epochs=100))
        predictor.fit(structures, np.linspace(0, 1, len(structures)))
        top = predictor.select_top(structures, 3)
        assert len(top) == 3

    def test_select_top_zero_or_empty(self, structures):
        predictor = PerformancePredictor()
        assert predictor.select_top(structures, 0) == []
        assert predictor.select_top([], 3) == []

    def test_select_top_picks_highest_predicted(self, structures):
        targets = [0.9 if can_be_skew_symmetric(s) else 0.1 for s in structures]
        predictor = PerformancePredictor(PredictorConfig(epochs=600, learning_rate=0.05))
        predictor.fit(structures, targets)
        top = predictor.select_top(structures, 5)
        assert sum(can_be_skew_symmetric(s) for s in top) >= 4

    def test_ranking_correlation_degenerate_cases(self, structures):
        predictor = PerformancePredictor()
        assert predictor.ranking_correlation(structures[:1], [0.5]) == 0.0

    def test_onehot_predictor_works(self, structures):
        predictor = PerformancePredictor(PredictorConfig(feature_type="onehot", hidden_units=8))
        predictor.fit(structures, np.linspace(0, 1, len(structures)))
        assert predictor.predict(structures).shape == (len(structures),)
