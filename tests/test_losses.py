"""Tests for the training losses, including gradient checks."""

import numpy as np
import pytest

from repro.kge.losses import HingeLoss, LogisticLoss, MulticlassLoss, get_loss, sigmoid, softplus


def finite_difference(loss, scores, targets, negatives=None, epsilon=1e-6):
    grad = np.zeros_like(scores)
    for index in np.ndindex(scores.shape):
        plus, minus = scores.copy(), scores.copy()
        plus[index] += epsilon
        minus[index] -= epsilon
        value_plus, _ = loss.compute(plus, targets, negatives=negatives)
        value_minus, _ = loss.compute(minus, targets, negatives=negatives)
        grad[index] = (value_plus - value_minus) / (2 * epsilon)
    return grad


@pytest.fixture()
def scores(rng):
    return rng.normal(size=(4, 6))


@pytest.fixture()
def targets():
    return np.array([0, 2, 5, 3])


@pytest.fixture()
def negatives():
    return np.array([[1, 2], [0, 4], [3, 1], [0, 5]])


class TestHelpers:
    def test_softplus_large_positive(self):
        assert softplus(np.array([800.0]))[0] == pytest.approx(800.0)

    def test_softplus_large_negative(self):
        assert softplus(np.array([-800.0]))[0] == pytest.approx(0.0)

    def test_sigmoid_range_and_extremes(self):
        values = sigmoid(np.array([-900.0, 0.0, 900.0]))
        assert values[0] == pytest.approx(0.0)
        assert values[1] == pytest.approx(0.5)
        assert values[2] == pytest.approx(1.0)

    def test_get_loss_factory(self):
        assert isinstance(get_loss("multiclass"), MulticlassLoss)
        assert isinstance(get_loss("logistic"), LogisticLoss)
        assert isinstance(get_loss("hinge"), HingeLoss)
        with pytest.raises(KeyError):
            get_loss("focal")


class TestMulticlassLoss:
    def test_perfect_prediction_near_zero(self):
        scores = np.full((2, 5), -100.0)
        scores[0, 1] = 100.0
        scores[1, 3] = 100.0
        value, _ = MulticlassLoss().compute(scores, np.array([1, 3]))
        assert value == pytest.approx(0.0, abs=1e-6)

    def test_uniform_scores_give_log_num_candidates(self):
        scores = np.zeros((3, 8))
        value, _ = MulticlassLoss().compute(scores, np.array([0, 1, 2]))
        assert value == pytest.approx(np.log(8))

    def test_gradient_matches_finite_difference(self, scores, targets):
        loss = MulticlassLoss()
        _, analytic = loss.compute(scores, targets)
        numeric = finite_difference(loss, scores, targets)
        np.testing.assert_allclose(analytic, numeric, rtol=1e-5, atol=1e-7)

    def test_gradient_rows_sum_to_zero(self, scores, targets):
        _, grad = MulticlassLoss().compute(scores, targets)
        np.testing.assert_allclose(grad.sum(axis=1), 0.0, atol=1e-12)

    def test_numerical_stability_with_huge_scores(self):
        scores = np.array([[1e8, 0.0, -1e8]])
        value, grad = MulticlassLoss().compute(scores, np.array([0]))
        assert np.isfinite(value)
        assert np.all(np.isfinite(grad))

    def test_empty_batch(self):
        value, grad = MulticlassLoss().compute(np.zeros((0, 4)), np.zeros(0, dtype=int))
        assert value == 0.0
        assert grad.shape == (0, 4)

    def test_invalid_target_column(self):
        with pytest.raises(ValueError):
            MulticlassLoss().compute(np.zeros((2, 3)), np.array([0, 5]))

    def test_target_shape_mismatch(self):
        with pytest.raises(ValueError):
            MulticlassLoss().compute(np.zeros((2, 3)), np.array([0]))


class TestLogisticLoss:
    def test_requires_negatives(self, scores, targets):
        with pytest.raises(ValueError):
            LogisticLoss().compute(scores, targets)

    def test_gradient_matches_finite_difference(self, scores, targets, negatives):
        loss = LogisticLoss()
        _, analytic = loss.compute(scores, targets, negatives=negatives)
        numeric = finite_difference(loss, scores, targets, negatives=negatives)
        np.testing.assert_allclose(analytic, numeric, rtol=1e-5, atol=1e-7)

    def test_confident_model_has_low_loss(self):
        scores = np.array([[10.0, -10.0, -10.0]])
        value, _ = LogisticLoss().compute(scores, np.array([0]), negatives=np.array([[1, 2]]))
        assert value < 0.01

    def test_untouched_columns_have_zero_gradient(self, scores, targets, negatives):
        _, grad = LogisticLoss().compute(scores, targets, negatives=negatives)
        # Column 3 of row 0 is neither the target (0) nor a negative (1, 2).
        assert grad[0, 3] == 0.0


class TestHingeLoss:
    def test_margin_must_be_positive(self):
        with pytest.raises(ValueError):
            HingeLoss(margin=0.0)

    def test_zero_loss_when_margin_satisfied(self):
        scores = np.array([[5.0, 0.0, 0.0]])
        value, grad = HingeLoss(margin=1.0).compute(
            scores, np.array([0]), negatives=np.array([[1, 2]])
        )
        assert value == 0.0
        assert not grad.any()

    def test_loss_value_for_known_violation(self):
        scores = np.array([[0.0, 0.5, -10.0]])
        value, _ = HingeLoss(margin=1.0).compute(scores, np.array([0]), negatives=np.array([[1, 1]]))
        # violation = 1 - 0 + 0.5 = 1.5 for both sampled negatives -> mean 1.5
        assert value == pytest.approx(1.5)

    def test_gradient_matches_finite_difference(self, scores, targets, negatives):
        loss = HingeLoss(margin=0.7)
        _, analytic = loss.compute(scores, targets, negatives=negatives)
        numeric = finite_difference(loss, scores, targets, negatives=negatives)
        np.testing.assert_allclose(analytic, numeric, rtol=1e-4, atol=1e-6)

    def test_requires_negatives(self, scores, targets):
        with pytest.raises(ValueError):
            HingeLoss().compute(scores, targets)
