"""Shared fixtures and the tiered-test harness.

Fixtures: small graphs and configurations sized for fast tests.

Tiers: tests carrying one of the markers registered in ``pyproject.toml``
(``slow`` — long integration runs, ``property`` — hypothesis suites,
``bench`` — timing tests) form tier 2 and are skipped by the default
``pytest -x -q`` run (tier 1).  Pass ``--runslow`` to run them; CI has a
dedicated tier-2 job.  See TESTING.md.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import GeneratorProfile, KnowledgeGraph, generate_knowledge_graph
from repro.datasets.statistics import RelationPattern
from repro.utils.config import PredictorConfig, SearchConfig, TrainingConfig

#: Markers whose tests are tier 2 (skipped unless --runslow is given).
TIER2_MARKERS = ("slow", "property", "bench")


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--runslow",
        action="store_true",
        default=False,
        help="run tier-2 tests (marked slow / property / bench)",
    )


def pytest_collection_modifyitems(config: pytest.Config, items) -> None:
    if config.getoption("--runslow"):
        return
    skips = {
        marker: pytest.mark.skip(reason=f"tier-2 ({marker}) test: pass --runslow to run")
        for marker in TIER2_MARKERS
    }
    for item in items:
        for marker in TIER2_MARKERS:
            if marker in item.keywords:
                item.add_marker(skips[marker])
                break


@pytest.fixture(scope="session")
def tiny_profile() -> GeneratorProfile:
    """A miniature profile with every relation pattern represented."""
    return GeneratorProfile(
        name="tiny",
        num_entities=60,
        num_clusters=4,
        relation_counts={
            RelationPattern.SYMMETRIC: 1,
            RelationPattern.ANTI_SYMMETRIC: 1,
            RelationPattern.INVERSE: 2,
            RelationPattern.GENERAL: 2,
        },
        triples_per_relation=60,
        seed=7,
    )


@pytest.fixture(scope="session")
def tiny_graph(tiny_profile) -> KnowledgeGraph:
    """A small but non-trivial knowledge graph (used by most training tests)."""
    return generate_knowledge_graph(tiny_profile)


@pytest.fixture(scope="session")
def micro_graph() -> KnowledgeGraph:
    """A hand-built 8-entity, 2-relation graph for exact-value tests."""
    triples = [
        (0, 0, 1),
        (1, 0, 0),
        (2, 0, 3),
        (3, 0, 2),
        (0, 1, 2),
        (1, 1, 3),
        (4, 1, 5),
        (5, 0, 6),
        (6, 1, 7),
        (7, 0, 4),
        (2, 1, 4),
        (3, 1, 5),
    ]
    return KnowledgeGraph(
        num_entities=8,
        num_relations=2,
        train=np.asarray(triples[:8], dtype=np.int64),
        valid=np.asarray(triples[8:10], dtype=np.int64),
        test=np.asarray(triples[10:], dtype=np.int64),
        name="micro",
    )


@pytest.fixture()
def fast_training_config() -> TrainingConfig:
    """Very small training budget; enough for loss to go down, not to converge."""
    return TrainingConfig(
        dimension=8,
        epochs=5,
        batch_size=64,
        learning_rate=0.5,
        l2_penalty=1e-4,
        seed=0,
    )


@pytest.fixture()
def fast_search_config() -> SearchConfig:
    """Search configuration sized for a couple of seconds of wall time."""
    return SearchConfig(
        max_blocks=6,
        candidates_per_step=8,
        top_parents=3,
        train_per_step=2,
        predictor=PredictorConfig(epochs=50),
        seed=0,
    )


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)
