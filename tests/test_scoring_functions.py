"""Behavioural tests for every scoring-function implementation."""

import numpy as np
import pytest

from repro.kge.scoring import (
    RESCAL,
    Analogy,
    BlockScoringFunction,
    BlockStructure,
    ComplEx,
    DistMult,
    MLPScoringFunction,
    RotatE,
    SimplE,
    TransE,
    available_scoring_functions,
    block_scoring_function,
    classical_block_scoring_function,
    classical_structure,
    get_scoring_function,
)
from repro.kge.scoring.base import HEAD, TAIL

NUM_ENTITIES, NUM_RELATIONS, DIMENSION = 12, 3, 8

ALL_MODELS = [DistMult, ComplEx, Analogy, SimplE, RESCAL, TransE, RotatE, MLPScoringFunction]


def init(model):
    params = model.init_params(NUM_ENTITIES, NUM_RELATIONS, DIMENSION, rng=0)
    return params


@pytest.mark.parametrize("model_class", ALL_MODELS)
class TestCommonBehaviour:
    def test_init_params_shapes(self, model_class):
        model = model_class()
        params = init(model)
        assert params["entities"].shape == (NUM_ENTITIES, DIMENSION)
        assert "relations" in params

    def test_score_triples_shape(self, model_class):
        model = model_class()
        params = init(model)
        triples = np.array([[0, 0, 1], [2, 1, 3], [4, 2, 5]])
        scores = model.score_triples(params, triples)
        assert scores.shape == (3,)
        assert np.all(np.isfinite(scores))

    def test_score_candidates_all_entities(self, model_class):
        model = model_class()
        params = init(model)
        queries = np.array([[0, 0], [1, 1]])
        scores = model.score_candidates(params, queries, direction=TAIL)
        assert scores.shape == (2, NUM_ENTITIES)

    def test_score_candidates_subset(self, model_class):
        model = model_class()
        params = init(model)
        queries = np.array([[0, 0], [1, 1]])
        candidates = np.array([3, 5, 7])
        subset = model.score_candidates(params, queries, direction=TAIL, candidates=candidates)
        full = model.score_candidates(params, queries, direction=TAIL)
        np.testing.assert_allclose(subset, full[:, candidates])

    def test_tail_scores_consistent_with_triples(self, model_class):
        """Column t of the tail-candidate matrix equals the direct triple score."""
        model = model_class()
        params = init(model)
        triples = np.array([[0, 0, 1], [2, 1, 3]])
        candidate_scores = model.score_candidates(params, triples[:, [0, 1]], direction=TAIL)
        direct = model.score_triples(params, triples)
        gathered = candidate_scores[np.arange(2), triples[:, 2]]
        np.testing.assert_allclose(gathered, direct, rtol=1e-8)

    def test_head_scores_consistent_with_triples(self, model_class):
        model = model_class()
        params = init(model)
        triples = np.array([[0, 0, 1], [2, 1, 3]])
        candidate_scores = model.score_candidates(params, triples[:, [2, 1]], direction=HEAD)
        if isinstance(model, MLPScoringFunction):
            # The MLP uses a *separate* network (NN2) for head prediction, so
            # head scores intentionally differ from score_triples (which uses
            # NN1); only the shape is checked here.
            assert candidate_scores.shape == (2, NUM_ENTITIES)
            return
        direct = model.score_triples(params, triples)
        gathered = candidate_scores[np.arange(2), triples[:, 0]]
        np.testing.assert_allclose(gathered, direct, rtol=1e-8)

    def test_invalid_direction(self, model_class):
        model = model_class()
        params = init(model)
        with pytest.raises(ValueError):
            model.score_candidates(params, np.array([[0, 0]]), direction="sideways")

    def test_bad_query_shape(self, model_class):
        model = model_class()
        params = init(model)
        with pytest.raises(ValueError):
            model.score_candidates(params, np.array([0, 0, 1]))

    def test_zero_grads_match_param_shapes(self, model_class):
        model = model_class()
        params = init(model)
        grads = model.zero_grads(params)
        assert set(grads) == set(params)
        for key in params:
            assert grads[key].shape == params[key].shape
            assert not grads[key].any()


class TestBlockScoringFunctionSpecifics:
    def test_requires_nonempty_structure(self):
        with pytest.raises(ValueError):
            BlockScoringFunction(BlockStructure([]))

    def test_dimension_must_be_divisible_by_four(self):
        model = DistMult()
        params = model.init_params(5, 2, 6, rng=0)
        with pytest.raises(ValueError):
            model.score_triples(params, np.array([[0, 0, 1]]))

    def test_matches_reference_structure_score(self, rng):
        structure = classical_structure("complex")
        model = BlockScoringFunction(structure)
        params = model.init_params(6, 2, DIMENSION, rng=1)
        triples = np.array([[0, 0, 1], [2, 1, 3]])
        scores = model.score_triples(params, triples)
        for row, (h, r, t) in enumerate(triples):
            expected = structure.score(
                params["entities"][h], params["relations"][r], params["entities"][t]
            )
            assert scores[row] == pytest.approx(expected)

    def test_distmult_block_equals_elementwise_formula(self):
        model = DistMult()
        params = init(model)
        triples = np.array([[0, 0, 1], [3, 2, 4]])
        h = params["entities"][triples[:, 0]]
        r = params["relations"][triples[:, 1]]
        t = params["entities"][triples[:, 2]]
        np.testing.assert_allclose(model.score_triples(params, triples), np.sum(h * r * t, axis=1))


class TestTransESpecifics:
    def test_l1_and_l2_norms_differ(self):
        params = TransE(norm=1).init_params(NUM_ENTITIES, NUM_RELATIONS, DIMENSION, rng=0)
        triples = np.array([[0, 0, 1]])
        assert TransE(norm=1).score_triples(params, triples) != pytest.approx(
            TransE(norm=2).score_triples(params, triples)
        )

    def test_invalid_norm(self):
        with pytest.raises(ValueError):
            TransE(norm=3)

    def test_perfect_translation_scores_zero(self):
        model = TransE()
        params = model.init_params(3, 1, 4, rng=0)
        params["relations"][0] = params["entities"][1] - params["entities"][0]
        score = model.score_triples(params, np.array([[0, 0, 1]]))
        assert score[0] == pytest.approx(0.0)

    def test_scores_are_non_positive(self):
        model = TransE()
        params = init(model)
        scores = model.score_candidates(params, np.array([[0, 0]]), direction=TAIL)
        assert np.all(scores <= 1e-12)


class TestRotatESpecifics:
    def test_requires_even_dimension(self):
        with pytest.raises(ValueError):
            RotatE().init_params(4, 2, 7, rng=0)

    def test_relation_parameters_are_phases(self):
        params = RotatE().init_params(NUM_ENTITIES, NUM_RELATIONS, DIMENSION, rng=0)
        assert params["relations"].shape == (NUM_RELATIONS, DIMENSION // 2)

    def test_zero_phase_is_identity_rotation(self):
        model = RotatE()
        params = model.init_params(4, 1, 6, rng=0)
        params["relations"][0] = 0.0
        params["entities"][1] = params["entities"][0]
        score = model.score_triples(params, np.array([[0, 0, 1]]))
        assert score[0] == pytest.approx(0.0)

    def test_rotation_is_isometry_for_head_queries(self):
        """Head-direction scores match brute-force ||x*r - t||."""
        model = RotatE()
        params = model.init_params(6, 2, DIMENSION, rng=3)
        tail, relation = 2, 1
        scores = model.score_candidates(params, np.array([[tail, relation]]), direction=HEAD)[0]
        for candidate in range(6):
            direct = model.score_triples(params, np.array([[candidate, relation, tail]]))[0]
            assert scores[candidate] == pytest.approx(direct, rel=1e-9)


class TestMLPSpecifics:
    def test_extra_parameters_created(self):
        params = MLPScoringFunction().init_params(NUM_ENTITIES, NUM_RELATIONS, DIMENSION, rng=0)
        for key in ("nn1_w1", "nn1_w2", "nn2_w1", "nn2_w2"):
            assert key in params

    def test_custom_hidden_units(self):
        params = MLPScoringFunction(hidden_units=5).init_params(4, 2, DIMENSION, rng=0)
        assert params["nn1_w1"].shape == (2 * DIMENSION, 5)


class TestRegistry:
    def test_all_names_instantiate(self):
        for name in available_scoring_functions():
            assert get_scoring_function(name) is not None

    def test_case_and_separator_insensitive(self):
        assert get_scoring_function("Dist-Mult").name == "DistMult"

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            get_scoring_function("tucker3000")

    def test_block_wrappers(self):
        structure = classical_structure("simple")
        assert block_scoring_function(structure).structure.key() == structure.key()
        assert classical_block_scoring_function("analogy").name == "Analogy"
