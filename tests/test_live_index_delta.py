"""Tests for incremental FilterIndex maintenance (repro.live.index_delta).

The from-scratch build over the mutated triples is the exact parity
oracle: after ``apply_index_delta``, every array of both direction
indexes must equal the rebuilt index's — not just semantically, but
element for element, which is what the canonical (code, entity) sort
order in ``_DirectionIndex.build`` guarantees.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import DatasetError, load_benchmark
from repro.datasets.knowledge_graph import FilterIndex
from repro.live import apply_index_delta


@pytest.fixture(scope="module")
def graph():
    return load_benchmark("fb15k237", scale=0.4)


@pytest.fixture(scope="module")
def observed(graph):
    """train+valid triples — the known-positive index's usual coverage."""
    return np.concatenate([graph.train, graph.valid])


def assert_indexes_equal(got: FilterIndex, want: FilterIndex) -> None:
    assert got.num_relations == want.num_relations
    for direction in ("tails", "heads"):
        got_dir, want_dir = getattr(got, direction), getattr(want, direction)
        np.testing.assert_array_equal(got_dir.codes, want_dir.codes, err_msg=direction)
        np.testing.assert_array_equal(got_dir.indptr, want_dir.indptr, err_msg=direction)
        np.testing.assert_array_equal(
            got_dir.entities, want_dir.entities, err_msg=direction
        )


class TestIncrementalEqualsRebuild:
    def test_appends_only(self, graph, observed):
        index = FilterIndex.build(observed, graph.num_relations)
        rng = np.random.default_rng(0)
        appends = np.stack(
            [
                rng.integers(graph.num_entities, size=40),
                rng.integers(graph.num_relations, size=40),
                rng.integers(graph.num_entities, size=40),
            ],
            axis=1,
        ).astype(np.int64)
        updated = apply_index_delta(index, graph.num_entities, appends=appends)
        oracle = FilterIndex.build(
            np.concatenate([observed, appends]), graph.num_relations
        )
        assert_indexes_equal(updated, oracle)

    def test_deletes_only(self, graph, observed):
        index = FilterIndex.build(observed, graph.num_relations)
        drop = np.asarray([5, 17, 101, 333, len(observed) - 1])
        keep = np.ones(len(observed), dtype=bool)
        keep[drop] = False
        updated = apply_index_delta(index, graph.num_entities, deletes=observed[drop])
        oracle = FilterIndex.build(observed[keep], graph.num_relations)
        assert_indexes_equal(updated, oracle)

    def test_mixed_delta_with_new_entities(self, graph, observed):
        index = FilterIndex.build(observed, graph.num_relations)
        new_entities = graph.num_entities + 2
        appends = np.asarray(
            [
                [graph.num_entities, 0, 3],
                [graph.num_entities + 1, 1, graph.num_entities],
                [0, 2, 1],
            ],
            dtype=np.int64,
        )
        deletes = observed[[2, 9, 50]]
        keep = np.ones(len(observed), dtype=bool)
        keep[[2, 9, 50]] = False
        updated = apply_index_delta(
            index, new_entities, appends=appends, deletes=deletes
        )
        oracle = FilterIndex.build(
            np.concatenate([observed[keep], appends]), graph.num_relations
        )
        assert_indexes_equal(updated, oracle)

    def test_duplicate_pair_across_splits_removed_once_per_delete(self, graph):
        # The same triple observed in two splits contributes its pair twice;
        # deleting it once must leave exactly one occurrence.
        row = graph.train[:1]
        doubled = np.concatenate([graph.train, row])
        index = FilterIndex.build(doubled, graph.num_relations)
        updated = apply_index_delta(index, graph.num_entities, deletes=row)
        oracle = FilterIndex.build(graph.train, graph.num_relations)
        assert_indexes_equal(updated, oracle)

    def test_input_order_is_irrelevant(self, graph, observed):
        index = FilterIndex.build(observed, graph.num_relations)
        appends = observed[:0]
        rng = np.random.default_rng(3)
        fresh = np.stack(
            [
                rng.integers(graph.num_entities, size=12),
                rng.integers(graph.num_relations, size=12),
                rng.integers(graph.num_entities, size=12),
            ],
            axis=1,
        ).astype(np.int64)
        forward = apply_index_delta(index, graph.num_entities, appends=fresh)
        backward = apply_index_delta(index, graph.num_entities, appends=fresh[::-1])
        assert_indexes_equal(forward, backward)


class TestErrors:
    def test_missing_pair_delete(self, graph, observed):
        index = FilterIndex.build(observed, graph.num_relations)
        known = {tuple(row) for row in observed}
        bogus = next(
            np.asarray([[h, 0, t]], dtype=np.int64)
            for h in range(graph.num_entities)
            for t in range(graph.num_entities)
            if h != t and (h, 0, t) not in known
        )
        with pytest.raises(DatasetError, match="pair not present"):
            apply_index_delta(index, graph.num_entities, deletes=bogus)

    def test_relation_growth_requires_rebuild(self, graph, observed):
        index = FilterIndex.build(observed, graph.num_relations)
        grown = np.asarray([[0, graph.num_relations, 1]], dtype=np.int64)
        with pytest.raises(DatasetError, match="rebuilding the index from scratch"):
            apply_index_delta(index, graph.num_entities, appends=grown)

    def test_entity_out_of_range(self, graph, observed):
        index = FilterIndex.build(observed, graph.num_relations)
        grown = np.asarray([[graph.num_entities, 0, 1]], dtype=np.int64)
        with pytest.raises(DatasetError, match="num_entities"):
            apply_index_delta(index, graph.num_entities, appends=grown)

    def test_bad_shape(self, graph, observed):
        index = FilterIndex.build(observed, graph.num_relations)
        with pytest.raises(DatasetError, match=r"\(n, 3\)"):
            apply_index_delta(
                index, graph.num_entities, appends=np.zeros((2, 2), dtype=np.int64)
            )
