"""Tests for the execution engine and the persistent evaluation store."""

import multiprocessing
import os

import numpy as np
import pytest

from repro.core import execution
from repro.core.evaluator import CandidateEvaluator, experiment_fingerprint
from repro.core.execution import (
    EvaluationContext,
    EvaluationTask,
    ExecutionError,
    ProcessPoolBackend,
    SerialBackend,
    create_backend,
    derive_candidate_seed,
    evaluate_candidate,
)
from repro.core.greedy_search import AutoSFSearch
from repro.core.invariance import canonical_key
from repro.core.store import EvaluationStore
from repro.core.search_space import enumerate_f4_structures
from repro.kge.scoring import classical_structure
from repro.utils.config import ConfigError, PredictorConfig, SearchConfig, TrainingConfig


@pytest.fixture(scope="module")
def engine_training_config():
    return TrainingConfig(dimension=8, epochs=3, batch_size=64, learning_rate=0.5, seed=0)


@pytest.fixture(scope="module")
def engine_search_config():
    return SearchConfig(
        max_blocks=6,
        candidates_per_step=6,
        top_parents=3,
        train_per_step=2,
        predictor=PredictorConfig(epochs=50),
        seed=0,
    )


class TestSeedDerivation:
    def test_deterministic(self):
        key = canonical_key(classical_structure("simple"))
        assert derive_candidate_seed(0, key) == derive_candidate_seed(0, key)

    def test_varies_with_candidate_and_base(self):
        simple = canonical_key(classical_structure("simple"))
        distmult = canonical_key(classical_structure("distmult"))
        assert derive_candidate_seed(0, simple) != derive_candidate_seed(0, distmult)
        assert derive_candidate_seed(0, simple) != derive_candidate_seed(1, simple)

    def test_none_base_stays_unseeded(self):
        assert derive_candidate_seed(None, (1, 2, 3)) is None

    def test_seed_is_valid_rng_seed(self):
        seed = derive_candidate_seed(123, canonical_key(classical_structure("complex")))
        assert 0 <= seed < 2**31 - 1
        np.random.default_rng(seed)


class TestBackends:
    def test_create_backend_factory(self):
        assert isinstance(create_backend("serial"), SerialBackend)
        process = create_backend("process", num_workers=3)
        assert isinstance(process, ProcessPoolBackend)
        assert process.num_workers == 3

    def test_create_backend_rejects_unknown(self):
        with pytest.raises(ValueError):
            create_backend("threads")

    def test_process_backend_rejects_bad_workers(self):
        with pytest.raises(ValueError):
            ProcessPoolBackend(num_workers=0)

    def test_process_backend_rejects_bad_start_method(self):
        with pytest.raises(ValueError):
            ProcessPoolBackend(num_workers=2, start_method="no-such-method")

    def test_empty_batch(self, tiny_graph, engine_training_config):
        context = EvaluationContext(tiny_graph, engine_training_config)
        assert ProcessPoolBackend(num_workers=2).run(context, []) == []

    def test_serial_and_process_outcomes_identical(self, tiny_graph, engine_training_config):
        structures = list(enumerate_f4_structures())[:3]
        tasks = [
            EvaluationTask(structure=s, seed=derive_candidate_seed(0, canonical_key(s)))
            for s in structures
        ]
        context = EvaluationContext(tiny_graph, engine_training_config)
        serial = SerialBackend().run(context, tasks)
        parallel = ProcessPoolBackend(num_workers=2).run(context, tasks)
        assert len(serial) == len(parallel) == len(tasks)
        for a, b in zip(serial, parallel):
            assert a.structure.key() == b.structure.key()
            assert a.validation_mrr == b.validation_mrr  # bitwise
            assert a.training_history.losses == b.training_history.losses

    def test_on_result_streams_in_task_order(self, tiny_graph, engine_training_config):
        structures = list(enumerate_f4_structures())[:3]
        tasks = [EvaluationTask(structure=s, seed=0) for s in structures]
        context = EvaluationContext(tiny_graph, engine_training_config)
        seen = []
        outcomes = SerialBackend().run(
            context, tasks, on_result=lambda index, outcome: seen.append(index)
        )
        assert seen == [0, 1, 2]
        assert len(outcomes) == 3

    def test_evaluate_candidate_seed_override(self, tiny_graph, engine_training_config):
        structure = classical_structure("simple")
        context = EvaluationContext(tiny_graph, engine_training_config)
        first = evaluate_candidate(context, EvaluationTask(structure, seed=11))
        second = evaluate_candidate(context, EvaluationTask(structure, seed=12))
        same = evaluate_candidate(context, EvaluationTask(structure, seed=11))
        assert first.validation_mrr == same.validation_mrr
        assert first.validation_mrr != second.validation_mrr


class TestSearchParity:
    def test_serial_vs_process_search_bitwise_equal(
        self, tiny_graph, engine_training_config, engine_search_config
    ):
        serial = AutoSFSearch(
            tiny_graph, engine_training_config, engine_search_config, backend=SerialBackend()
        ).run(max_evaluations=8)
        parallel = AutoSFSearch(
            tiny_graph,
            engine_training_config,
            engine_search_config,
            backend=ProcessPoolBackend(num_workers=2),
        ).run(max_evaluations=8)
        assert serial.num_evaluations == parallel.num_evaluations
        for a, b in zip(serial.records, parallel.records):
            assert a.structure.key() == b.structure.key()
            assert a.validation_mrr == b.validation_mrr  # bitwise
            assert (a.stage, a.order) == (b.stage, b.order)
        assert serial.best_structure.key() == parallel.best_structure.key()
        assert serial.best_mrr == parallel.best_mrr

    def test_config_driven_backend(self, tiny_graph, engine_training_config, engine_search_config):
        config = SearchConfig.from_dict(
            {**engine_search_config.to_dict(), "backend": "process", "num_workers": 2}
        )
        search = AutoSFSearch(tiny_graph, engine_training_config, config)
        assert isinstance(search.backend, ProcessPoolBackend)
        result = search.run(max_evaluations=5)
        assert result.num_evaluations == 5


class TestEvaluateMany:
    def test_within_batch_duplicates_train_once(self, tiny_graph, engine_training_config):
        evaluator = CandidateEvaluator(tiny_graph, engine_training_config)
        structure = classical_structure("simple")
        results = evaluator.evaluate_many([structure, structure])
        assert evaluator.num_trained == 1
        assert not results[0].from_cache
        assert results[1].from_cache
        assert results[0].validation_mrr == results[1].validation_mrr

    def test_batch_results_in_input_order(self, tiny_graph, engine_training_config):
        structures = list(enumerate_f4_structures())[:3]
        evaluator = CandidateEvaluator(tiny_graph, engine_training_config)
        batched = evaluator.evaluate_many(structures, backend=ProcessPoolBackend(num_workers=2))
        for structure, evaluation in zip(structures, batched):
            assert evaluation.structure.key() == structure.key()

    def test_timing_recorded_per_candidate(self, tiny_graph, engine_training_config):
        evaluator = CandidateEvaluator(tiny_graph, engine_training_config)
        evaluator.evaluate_many(list(enumerate_f4_structures())[:2])
        assert evaluator.timing.count("train") == 2
        assert evaluator.timing.total("train") > 0
        assert evaluator.timing.last("evaluate") > 0


class TestCreateBackendValidation:
    """Bad worker counts fail loudly at the configuration seam.

    Regression: ``create_backend`` used to clamp ``num_workers`` with
    ``max(num_workers, 1)``, silently turning a typo'd ``workers: 0`` into
    a serial run instead of rejecting it.
    """

    def test_process_zero_workers_rejected(self):
        with pytest.raises(ConfigError, match="num_workers"):
            create_backend("process", num_workers=0)

    def test_serial_negative_workers_rejected(self):
        with pytest.raises(ConfigError, match="got -5"):
            create_backend("serial", num_workers=-5)

    def test_options_rejected_for_non_queue_backends(self):
        with pytest.raises(ConfigError, match="only valid for the 'queue' backend"):
            create_backend("process", num_workers=2, max_retries=3)

    def test_queue_allows_zero_but_not_negative_workers(self):
        from repro.core.distributed import QueueBackend

        backend = create_backend("queue", num_workers=0)
        assert isinstance(backend, QueueBackend)
        assert backend.num_workers == 0
        with pytest.raises(ConfigError, match="num_workers"):
            create_backend("queue", num_workers=-1)

    def test_queue_options_passed_through(self):
        backend = create_backend(
            "queue", num_workers=2, max_retries=5, worker_timeout=7.0, port=6000
        )
        assert backend.max_retries == 5
        assert backend.worker_timeout == 7.0
        assert backend.port == 6000


# Module-level (picklable) stand-in for _run_worker_task that simulates a
# worker being OOM-killed / segfaulting while holding task 0.
_REAL_RUN_WORKER_TASK = execution._run_worker_task


def _killed_worker_task(item):
    index, task = item
    if index == 0:
        os._exit(1)
    return _REAL_RUN_WORKER_TASK(item)


@pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="fork start method required to inherit the patched worker task",
)
class TestDeadPoolWorker:
    """Regression: a worker dying mid-batch used to kill the whole search
    with a context-free BrokenProcessPool instead of re-dispatching."""

    def test_dead_worker_yields_none_holes_not_a_pool_error(
        self, tiny_graph, engine_training_config, monkeypatch
    ):
        monkeypatch.setattr(execution, "_run_worker_task", _killed_worker_task)
        structures = list(enumerate_f4_structures())[:3]
        tasks = [EvaluationTask(structure=s, seed=0) for s in structures]
        context = EvaluationContext(tiny_graph, engine_training_config)
        backend = ProcessPoolBackend(num_workers=2, start_method="fork")
        outcomes = backend.run(context, tasks)  # must not raise
        assert len(outcomes) == len(tasks)
        assert outcomes[0] is None  # the task the dead worker held

    def test_evaluator_recovers_dead_worker_batch(
        self, tiny_graph, engine_training_config, monkeypatch
    ):
        structures = list(enumerate_f4_structures())[:3]
        healthy = CandidateEvaluator(tiny_graph, engine_training_config, base_seed=0)
        expected = healthy.evaluate_many(structures)

        monkeypatch.setattr(execution, "_run_worker_task", _killed_worker_task)
        evaluator = CandidateEvaluator(tiny_graph, engine_training_config, base_seed=0)
        backend = ProcessPoolBackend(num_workers=2, start_method="fork")
        recovered = evaluator.evaluate_many(structures, backend=backend)
        assert len(recovered) == len(structures)
        for a, b in zip(expected, recovered):
            assert a.structure.key() == b.structure.key()
            assert a.validation_mrr == b.validation_mrr  # serial-retry parity


class TruncatingBackend(SerialBackend):
    """Violates the contract: returns one outcome too few."""

    name = "truncating"

    def run(self, context, tasks, on_result=None):
        return super().run(context, tasks, on_result=on_result)[:-1]


class MisalignedBackend(SerialBackend):
    """Violates the contract: returns outcomes shifted by one slot.

    Does not stream via ``on_result`` (like a backend that only returns a
    batch), so absorption happens purely from the misaligned return value.
    """

    name = "misaligned"

    def run(self, context, tasks, on_result=None):
        outcomes = super().run(context, tasks)
        return outcomes[1:] + outcomes[:1]


class TestOutcomeContract:
    """Regression: a backend returning a truncated or shuffled outcome list
    used to be zipped silently against the task list, mis-assigning results
    to the wrong candidates."""

    def test_truncated_outcome_list_raises(self, tiny_graph, engine_training_config):
        structures = list(enumerate_f4_structures())[:3]
        evaluator = CandidateEvaluator(tiny_graph, engine_training_config)
        with pytest.raises(ExecutionError, match="one .*slot per task"):
            evaluator.evaluate_many(structures, backend=TruncatingBackend())

    def test_misaligned_outcomes_raise(self, tiny_graph, engine_training_config):
        structures = list(enumerate_f4_structures())[:3]
        evaluator = CandidateEvaluator(tiny_graph, engine_training_config)
        with pytest.raises(ExecutionError, match="outcome-alignment"):
            evaluator.evaluate_many(structures, backend=MisalignedBackend())


class LossyBackend(SerialBackend):
    """A backend that silently drops the outcomes of selected tasks.

    Models a killed worker: the run() call returns, but some dispatched
    tasks produced neither an on_result callback nor a returned outcome.
    """

    name = "lossy"

    def __init__(self, drop_indices):
        self.drop_indices = set(drop_indices)
        self.executed = []

    def run(self, context, tasks, on_result=None):
        outcomes = []
        for index, task in enumerate(tasks):
            if index in self.drop_indices:
                outcomes.append(None)
                continue
            self.executed.append(index)
            outcome = evaluate_candidate(context, task)
            if on_result is not None:
                on_result(index, outcome)
            outcomes.append(outcome)
        return outcomes


class TestLossyBackendRecovery:
    """Regression: missing outcomes used to surface as an opaque KeyError."""

    def test_missing_outcomes_are_retried_serially(self, tiny_graph, engine_training_config):
        structures = list(enumerate_f4_structures())[:3]
        evaluator = CandidateEvaluator(tiny_graph, engine_training_config, base_seed=0)
        lossy = LossyBackend(drop_indices=[1])
        results = evaluator.evaluate_many(structures, backend=lossy)
        assert len(results) == 3
        assert evaluator.num_trained == 3
        for structure, evaluation in zip(structures, results):
            assert evaluation.structure.key() == structure.key()

    def test_retried_results_match_healthy_backend(self, tiny_graph, engine_training_config):
        structures = list(enumerate_f4_structures())[:3]
        healthy = CandidateEvaluator(tiny_graph, engine_training_config, base_seed=0)
        expected = healthy.evaluate_many(structures)

        evaluator = CandidateEvaluator(tiny_graph, engine_training_config, base_seed=0)
        recovered = evaluator.evaluate_many(structures, backend=LossyBackend([0, 2]))
        for a, b in zip(expected, recovered):
            assert a.validation_mrr == b.validation_mrr  # per-candidate seeding

    def test_unrecoverable_loss_raises_descriptive_error(
        self, tiny_graph, engine_training_config
    ):
        structures = list(enumerate_f4_structures())[:2]
        evaluator = CandidateEvaluator(tiny_graph, engine_training_config)
        evaluator._retry_backend = LossyBackend(drop_indices=[0])  # retry also fails
        with pytest.raises(RuntimeError, match="returned no outcome"):
            evaluator.evaluate_many(structures, backend=LossyBackend(drop_indices=[0, 1]))

    def test_partial_unrecoverable_loss_names_the_survivor_count(
        self, tiny_graph, engine_training_config
    ):
        structures = list(enumerate_f4_structures())[:3]
        evaluator = CandidateEvaluator(tiny_graph, engine_training_config)
        evaluator._retry_backend = LossyBackend(drop_indices=[0])
        with pytest.raises(RuntimeError, match="1 of 3"):
            evaluator.evaluate_many(structures, backend=LossyBackend(drop_indices=[0]))


class TestEvaluationStore:
    def test_round_trip(self, tiny_graph, engine_training_config, tmp_path):
        store = EvaluationStore(tmp_path)
        evaluator = CandidateEvaluator(tiny_graph, engine_training_config, store=store)
        structure = classical_structure("analogy")
        original = evaluator.evaluate(structure)
        key = canonical_key(structure)
        assert key in store
        assert len(store) == 1

        loaded = store.get(key)
        assert loaded is not None
        assert loaded.from_cache
        assert loaded.validation_mrr == original.validation_mrr
        assert loaded.validation_result.as_dict() == original.validation_result.as_dict()
        assert loaded.validation_result.hits.keys() == original.validation_result.hits.keys()
        assert loaded.training_history.losses == original.training_history.losses
        assert loaded.structure.key() == structure.key()

    def test_cross_run_cache_hit(self, tiny_graph, engine_training_config, tmp_path):
        store = EvaluationStore(tmp_path)
        first = CandidateEvaluator(tiny_graph, engine_training_config, store=store)
        trained = first.evaluate(classical_structure("simple"))

        fresh_store = EvaluationStore(tmp_path)  # simulates a new process
        second = CandidateEvaluator(tiny_graph, engine_training_config, store=fresh_store)
        cached = second.evaluate(classical_structure("simple"))
        assert cached.from_cache
        assert cached.validation_mrr == trained.validation_mrr
        assert second.num_trained == 0

    def test_missing_key_returns_none(self, tmp_path):
        store = EvaluationStore(tmp_path)
        assert store.get((1, 2, 3)) is None
        assert (1, 2, 3) not in store
        assert len(store) == 0

    def test_corrupt_entry_is_ignored(self, tiny_graph, engine_training_config, tmp_path):
        store = EvaluationStore(tmp_path)
        evaluator = CandidateEvaluator(tiny_graph, engine_training_config, store=store)
        evaluator.evaluate(classical_structure("distmult"))
        (tmp_path / "evaluations" / "garbage.json").write_text("{not json", encoding="utf-8")
        truncated = tmp_path / "evaluations" / ("0" * 32 + ".json")
        truncated.write_text("{not json", encoding="utf-8")
        reopened = EvaluationStore(tmp_path)
        assert reopened.keys() == [canonical_key(classical_structure("distmult"))]
        assert len(reopened) == 2  # entry files on disk, foreign names excluded

    def test_different_training_config_misses_store(
        self, tiny_graph, engine_training_config, tmp_path
    ):
        store = EvaluationStore(tmp_path)
        first = CandidateEvaluator(tiny_graph, engine_training_config, store=store)
        first.evaluate(classical_structure("simple"))

        other_config = engine_training_config.replace(epochs=engine_training_config.epochs + 1)
        second = CandidateEvaluator(tiny_graph, other_config, store=EvaluationStore(tmp_path))
        evaluation = second.evaluate(classical_structure("simple"))
        assert not evaluation.from_cache
        assert second.num_trained == 1  # stale entry was not served

    def test_fingerprint_sensitive_to_experiment(self, tiny_graph, micro_graph,
                                                 engine_training_config):
        base = experiment_fingerprint(tiny_graph, engine_training_config)
        assert base == experiment_fingerprint(tiny_graph, engine_training_config)
        assert base != experiment_fingerprint(micro_graph, engine_training_config)
        assert base != experiment_fingerprint(
            tiny_graph, engine_training_config.replace(learning_rate=0.1)
        )
        assert base != experiment_fingerprint(tiny_graph, engine_training_config, base_seed=1)

    def test_interrupt_mid_batch_keeps_finished_candidates(
        self, tiny_graph, engine_training_config, tmp_path
    ):
        class ExplodingBackend(SerialBackend):
            """Completes the first task, then dies mid-batch."""

            def run(self, context, tasks, on_result=None):
                for index, task in enumerate(tasks):
                    if index == 1:
                        raise KeyboardInterrupt
                    outcome = evaluate_candidate(context, task)
                    if on_result is not None:
                        on_result(index, outcome)
                return []

        store = EvaluationStore(tmp_path)
        evaluator = CandidateEvaluator(tiny_graph, engine_training_config, store=store)
        structures = list(enumerate_f4_structures())[:3]
        with pytest.raises(KeyboardInterrupt):
            evaluator.evaluate_many(structures, backend=ExplodingBackend())
        # The candidate that finished before the interrupt is checkpointed.
        assert len(store) == 1
        assert evaluator.num_trained == 1
        resumed = CandidateEvaluator(
            tiny_graph, engine_training_config, store=EvaluationStore(tmp_path)
        )
        assert resumed.evaluate(structures[0]).from_cache

    def test_search_resumes_without_retraining(
        self, tiny_graph, engine_training_config, engine_search_config, tmp_path
    ):
        store = EvaluationStore(tmp_path)
        first = AutoSFSearch(
            tiny_graph, engine_training_config, engine_search_config, store=store
        )
        result = first.run(max_evaluations=6)
        trained = first.evaluator.num_trained
        assert trained > 0

        second = AutoSFSearch(
            tiny_graph, engine_training_config, engine_search_config, store=EvaluationStore(tmp_path)
        )
        resumed = second.run(max_evaluations=6)
        assert second.evaluator.num_trained == 0
        assert [r.validation_mrr for r in resumed.records] == [
            r.validation_mrr for r in result.records
        ]
        assert resumed.best_structure.key() == result.best_structure.key()
