"""Tests for live-store mutation: delta shards, generations, compaction.

The parity oracle throughout is the batch path: a store mutated through
``apply_delta`` and folded back by ``compact_store`` must be bit-identical
to re-ingesting the merged TSV from scratch (shard bytes and vocabulary;
the manifests differ only in the ``generation`` audit counter).
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.datasets import (
    DatasetError,
    STORE_SCHEMA_VERSION,
    TripleStore,
    TripleStream,
    build_filter_index,
    ingest_tsv,
    load_benchmark,
)
from repro.datasets.pipeline import MANIFEST_FILENAME
from repro.live import compact_store
from repro.obs.metrics import MetricsRegistry, NullRegistry, get_registry, set_registry


@pytest.fixture(scope="module")
def graph():
    return load_benchmark("wn18rr", scale=0.4)


@pytest.fixture()
def store(graph, tmp_path):
    return graph.to_store(tmp_path / "kg", shard_size=300)


def novel_rows(store, count, seed=0, new_entities=0):
    """``count`` triples absent from every split (ids within the old vocab),
    plus one triple per requested brand-new entity."""
    rng = np.random.default_rng(seed)
    known = {
        tuple(row)
        for split in ("train", "valid", "test")
        for row in store.load_split(split)
    }
    rows = []
    while len(rows) < count:
        h = int(rng.integers(store.num_entities))
        r = int(rng.integers(store.num_relations))
        t = int(rng.integers(store.num_entities))
        if h != t and (h, r, t) not in known:
            known.add((h, r, t))
            rows.append((h, r, t))
    for offset in range(new_entities):
        rows.append(
            (store.num_entities + offset, int(rng.integers(store.num_relations)), 0)
        )
    return np.asarray(rows, dtype=np.int64)


class TestApplyDelta:
    def test_append_merges_and_bumps_generation(self, store):
        assert store.generation == 0
        base = store.load_split("train")
        appended = novel_rows(store, 5)
        assert store.apply_delta(appends=appended) == 1
        assert store.generation == 1
        merged = store.load_split("train")
        np.testing.assert_array_equal(merged[: base.shape[0]], base)
        np.testing.assert_array_equal(merged[base.shape[0] :], appended)
        assert store.split_count("train") == base.shape[0] + 5
        assert store.has_deltas("train") and not store.has_deltas("valid")

    def test_delete_removes_in_place(self, store):
        base = store.load_split("train")
        victim = base[7:8]
        store.apply_delta(deletes=victim)
        merged = store.load_split("train")
        assert merged.shape[0] == base.shape[0] - 1
        np.testing.assert_array_equal(
            merged, np.concatenate([base[:7], base[8:]])
        )

    def test_delete_then_append_same_generation_is_atomic_replace(self, store):
        base = store.load_split("train")
        generation = store.apply_delta(deletes=base[3:4], appends=base[3:4])
        # Delete applies before append within one generation, so replacing
        # a triple with itself is legal — and a no-op in the merged view
        # apart from moving the row to the end.
        merged = store.load_split("train")
        assert generation == 1
        assert merged.shape[0] == base.shape[0]
        np.testing.assert_array_equal(merged[-1], base[3])

    def test_generations_accumulate(self, store):
        first = novel_rows(store, 3, seed=1)
        second = novel_rows(store, 3, seed=2)
        store.apply_delta(appends=first)
        store.apply_delta(appends=second)
        assert store.generation == 2
        assert len(store.delta_entries("train")) == 2
        summary = store.summary()
        assert summary["generation"] == 2
        assert summary["pending_deltas"] == 2

    def test_new_entities_grow_nameless_vocab(self, store):
        before = store.num_entities
        store.apply_delta(appends=novel_rows(store, 1, new_entities=2))
        assert store.num_entities == before + 2

    def test_delete_missing_triple_is_descriptive(self, store):
        bogus = novel_rows(store, 1, seed=9)
        with pytest.raises(DatasetError, match="not present in the current generation"):
            store.apply_delta(deletes=bogus)

    def test_duplicate_append_is_descriptive(self, store):
        present = store.load_split("train")[:1]
        with pytest.raises(DatasetError, match="already present"):
            store.apply_delta(appends=present)

    def test_names_on_nameless_store_rejected(self, store):
        with pytest.raises(DatasetError, match="no entity_names"):
            store.apply_delta(
                appends=novel_rows(store, 0, new_entities=1),
                new_entity_names=["brand-new"],
            )

    def test_empty_delta_rejected(self, store):
        with pytest.raises(DatasetError, match="empty"):
            store.apply_delta()

    def test_stream_refuses_pending_deltas(self, store):
        store.apply_delta(appends=novel_rows(store, 2))
        with pytest.raises(DatasetError, match="compact first"):
            TripleStream(store, batch_size=32)

    def test_filter_index_covers_merged_view(self, store):
        appended = novel_rows(store, 4, new_entities=1)
        store.apply_delta(appends=appended)
        index = build_filter_index(store)
        merged = np.concatenate(
            [store.load_split(split) for split in ("train", "valid", "test")]
        )
        from repro.datasets.knowledge_graph import FilterIndex

        oracle = FilterIndex.build(merged, store.num_relations)
        for direction in ("tails", "heads"):
            got, want = getattr(index, direction), getattr(oracle, direction)
            np.testing.assert_array_equal(got.codes, want.codes)
            np.testing.assert_array_equal(got.indptr, want.indptr)
            np.testing.assert_array_equal(got.entities, want.entities)


class TestManifestCompat:
    def test_v1_manifest_loads_with_generation_zero(self, graph, tmp_path):
        store = graph.to_store(tmp_path / "kg")
        manifest_path = store.directory / MANIFEST_FILENAME
        manifest = json.loads(manifest_path.read_text())
        # A pre-live manifest has neither key.
        manifest.pop("generation")
        manifest.pop("deltas")
        manifest["store_schema_version"] = 1
        manifest_path.write_text(json.dumps(manifest))
        reopened = TripleStore.open(store.directory)
        assert reopened.generation == 0
        assert reopened.schema_version == 1
        assert not reopened.has_deltas()
        np.testing.assert_array_equal(
            reopened.load_split("train"), store.load_split("train")
        )

    def test_future_schema_version_still_descriptive(self, graph, tmp_path):
        store = graph.to_store(tmp_path / "kg")
        manifest_path = store.directory / MANIFEST_FILENAME
        manifest = json.loads(manifest_path.read_text())
        manifest["store_schema_version"] = STORE_SCHEMA_VERSION + 1
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(DatasetError, match="newer than this release"):
            TripleStore.open(store.directory)

    def test_invalid_generation_rejected(self, graph, tmp_path):
        store = graph.to_store(tmp_path / "kg")
        manifest_path = store.directory / MANIFEST_FILENAME
        manifest = json.loads(manifest_path.read_text())
        manifest["generation"] = -3
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(DatasetError, match="generation"):
            TripleStore.open(store.directory)

    def test_missing_delta_shard_detected(self, store):
        store.apply_delta(appends=novel_rows(store, 2))
        entry = store.delta_entries("train")[0]
        (store.directory / entry["file"]).unlink()
        with pytest.raises(DatasetError, match="delta shard .* missing"):
            TripleStore.open(store.directory)


NAMED_TSV_ROWS = {
    "train": [
        ("a", "r0", "b"), ("b", "r0", "c"), ("c", "r1", "a"), ("d", "r0", "a"),
        ("a", "r1", "d"), ("b", "r1", "d"), ("c", "r0", "d"), ("d", "r1", "b"),
    ],
    "valid": [("a", "r0", "c"), ("b", "r0", "d")],
    "test": [("c", "r0", "a"), ("d", "r0", "c")],
}


def write_named_tsv(directory, rows):
    directory.mkdir(parents=True, exist_ok=True)
    for split, triples in rows.items():
        (directory / f"{split}.txt").write_text(
            "".join(f"{h}\t{r}\t{t}\n" for h, r, t in triples), encoding="utf-8"
        )
    return directory


class TestCompactionParity:
    """compact_store == re-ingesting the merged TSV, bit for bit.

    Oracle condition: deletions never remove a symbol's first appearance
    and appends introduce new symbols in first-appearance order — then the
    merged row order equals the merged TSV's row order, so shard bytes and
    vocabulary come out identical.
    """

    def mutate(self, store):
        # Delete train row 6 ("c r0 d"): every symbol appears earlier, so
        # the vocabulary's first-appearance order is untouched.
        deletes = np.asarray([[2, 0, 3]], dtype=np.int64)
        # Append two triples, one introducing the new entity "e" (id 4).
        appends = np.asarray([[0, 0, 3], [4, 1, 0]], dtype=np.int64)
        store.apply_delta(
            deletes=deletes, appends=appends, new_entity_names=["e"]
        )
        return deletes, appends

    def merged_tsv_rows(self):
        rows = {split: list(triples) for split, triples in NAMED_TSV_ROWS.items()}
        rows["train"].remove(("c", "r0", "d"))
        rows["train"].extend([("a", "r0", "d"), ("e", "r1", "a")])
        return rows

    def test_named_store_requires_exact_new_names(self, tmp_path):
        store = ingest_tsv(write_named_tsv(tmp_path / "tsv", NAMED_TSV_ROWS), tmp_path / "kg")
        with pytest.raises(DatasetError, match="new entity"):
            store.apply_delta(appends=np.asarray([[4, 0, 0]], dtype=np.int64))
        with pytest.raises(DatasetError, match="already present"):
            store.apply_delta(
                appends=np.asarray([[4, 0, 0]], dtype=np.int64),
                new_entity_names=["a"],
            )

    def test_compaction_bit_identical_to_reingest(self, tmp_path):
        store = ingest_tsv(write_named_tsv(tmp_path / "tsv", NAMED_TSV_ROWS), tmp_path / "kg")
        self.mutate(store)
        compacted = compact_store(store, output_dir=tmp_path / "compacted")

        reingested = ingest_tsv(
            write_named_tsv(tmp_path / "merged_tsv", self.merged_tsv_rows()),
            tmp_path / "reingested",
        )

        assert compacted.manifest["vocab_hash"] == reingested.manifest["vocab_hash"]
        assert (compacted.directory / "vocab.json").read_bytes() == (
            reingested.directory / "vocab.json"
        ).read_bytes()
        for split in ("train", "valid", "test"):
            got = compacted.manifest["splits"][split]
            want = reingested.manifest["splits"][split]
            assert [entry["file"] for entry in got] == [e["file"] for e in want]
            for entry in got:
                assert (compacted.directory / entry["file"]).read_bytes() == (
                    reingested.directory / entry["file"]
                ).read_bytes()
        # The one intended difference: compaction keeps the audit counter.
        assert compacted.generation == 1
        assert reingested.generation == 0

    def test_in_place_compaction_refreshes_the_handle(self, store):
        before = store.load_split("train")
        appended = novel_rows(store, 3)
        store.apply_delta(appends=appended)
        compacted = compact_store(store)
        assert compacted.directory == store.directory
        assert not store.has_deltas()
        assert store.generation == 1
        merged = store.load_split("train")
        np.testing.assert_array_equal(
            merged, np.concatenate([before, appended])
        )
        # The stream guard lifts once deltas are folded in.
        TripleStream(store, batch_size=32)

    def test_no_op_without_deltas(self, store):
        assert compact_store(store) is store

    def test_null_registry_parity(self, graph, tmp_path):
        """Telemetry on vs off must not change a single byte on disk."""
        outputs = []
        previous = get_registry()
        try:
            for index, registry in enumerate((MetricsRegistry(), NullRegistry())):
                set_registry(registry)
                store = graph.to_store(tmp_path / f"kg{index}", shard_size=300)
                store.apply_delta(appends=novel_rows(store, 4, seed=11))
                compacted = compact_store(store)
                outputs.append(
                    b"".join(
                        (compacted.directory / entry["file"]).read_bytes()
                        for split in ("train", "valid", "test")
                        for entry in compacted.manifest["splits"][split]
                    )
                )
        finally:
            set_registry(previous)
        assert outputs[0] == outputs[1]
