"""Tests for the metrics registry and Prometheus text exposition."""

import math
import threading

import pytest

from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    get_registry,
    parse_prometheus,
    render_prometheus,
    set_registry,
)
from repro.utils.timing import PHASE_HISTOGRAM, TimingRecorder


class TestMetrics:
    def test_counter_increments(self):
        counter = Counter("c_total")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == pytest.approx(3.5)

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter("c_total").inc(-1.0)

    def test_gauge_set_inc_dec(self):
        gauge = Gauge("g")
        gauge.set(10.0)
        gauge.inc(2.0)
        gauge.dec(5.0)
        assert gauge.value == pytest.approx(7.0)

    def test_histogram_le_is_inclusive_upper_bound(self):
        hist = Histogram("h", buckets=(1.0, 2.0))
        hist.observe(1.0)  # lands in le=1 (inclusive)
        hist.observe(1.5)  # le=2
        hist.observe(9.0)  # +Inf
        assert hist.cumulative_counts() == [1, 2, 3]
        assert hist.count == 3
        assert hist.sum == pytest.approx(11.5)

    def test_histogram_rejects_unsorted_buckets(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=(2.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("h", buckets=(1.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("h", buckets=())

    def test_histogram_strips_trailing_inf(self):
        hist = Histogram("h", buckets=(1.0, math.inf))
        assert hist.buckets == (1.0,)

    def test_default_buckets_log_spaced_increasing(self):
        bounds = DEFAULT_LATENCY_BUCKETS
        assert list(bounds) == sorted(bounds)
        assert bounds[0] == pytest.approx(1e-4)
        assert bounds[-1] == pytest.approx(10.0)


class TestRegistry:
    def test_same_handle_for_same_series(self):
        registry = MetricsRegistry()
        a = registry.counter("x_total", labels={"k": "v"})
        b = registry.counter("x_total", labels={"k": "v"})
        assert a is b

    def test_distinct_labels_distinct_series(self):
        registry = MetricsRegistry()
        a = registry.counter("x_total", labels={"k": "1"})
        b = registry.counter("x_total", labels={"k": "2"})
        assert a is not b

    def test_type_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x_total")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("x_total")
        # Even with different labels: one family, one type.
        with pytest.raises(ValueError, match="already registered"):
            registry.histogram("x_total", labels={"k": "v"})

    def test_invalid_names_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("1starts_with_digit")
        with pytest.raises(ValueError):
            registry.counter("has space")
        with pytest.raises(ValueError):
            registry.counter("ok_total", labels={"bad-label": "v"})

    def test_collect_sorted(self):
        registry = MetricsRegistry()
        registry.counter("b_total")
        registry.counter("a_total", labels={"z": "2"})
        registry.counter("a_total", labels={"z": "1"})
        names = [(m.name, m.labels) for m in registry.collect()]
        assert names == sorted(names)

    def test_as_dict_shapes(self):
        registry = MetricsRegistry()
        registry.counter("c_total").inc(3)
        registry.histogram("h", buckets=(1.0,)).observe(0.5)
        data = registry.as_dict()
        by_name = {entry["name"]: entry for entry in data["metrics"]}
        assert by_name["c_total"]["value"] == 3
        assert by_name["h"]["count"] == 1
        assert by_name["h"]["buckets"] == {"1": 1, "+Inf": 1}

    def test_thread_safety_under_contention(self):
        registry = MetricsRegistry()
        counter = registry.counter("contended_total")
        hist = registry.histogram("contended_seconds", buckets=(0.5,))

        def hammer():
            for _ in range(1000):
                counter.inc()
                hist.observe(0.1)

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value == 8000
        assert hist.count == 8000
        assert hist.cumulative_counts() == [8000, 8000]


class TestNullRegistry:
    def test_null_handles_are_inert_and_shared(self):
        registry = NullRegistry()
        counter = registry.counter("anything")
        counter.inc(5)
        assert counter.value == 0.0
        assert registry.counter("other") is counter
        registry.gauge("g").set(3)
        registry.histogram("h").observe(1.0)
        assert registry.collect() == []
        assert registry.as_dict() == {"metrics": []}
        assert render_prometheus(registry) == ""

    def test_global_default_is_null(self):
        previous = set_registry(None)
        try:
            assert get_registry() is NULL_REGISTRY
        finally:
            set_registry(previous)

    def test_set_registry_returns_previous(self):
        registry = MetricsRegistry()
        previous = set_registry(registry)
        try:
            assert get_registry() is registry
        finally:
            restored = set_registry(previous)
            assert restored is registry


class TestExposition:
    def test_counter_and_gauge_lines(self):
        registry = MetricsRegistry()
        registry.counter("req_total", help="requests", labels={"worker_id": "0"}).inc(2)
        registry.gauge("up_seconds", help="uptime").set(1.5)
        text = render_prometheus(registry)
        assert "# HELP req_total requests" in text
        assert "# TYPE req_total counter" in text
        assert 'req_total{worker_id="0"} 2' in text
        assert "# TYPE up_seconds gauge" in text
        assert "up_seconds 1.5" in text
        assert text.endswith("\n")

    def test_label_value_escaping_round_trips(self):
        registry = MetricsRegistry()
        nasty = 'back\\slash "quote"\nnewline'
        registry.counter("esc_total", labels={"k": nasty}).inc()
        text = render_prometheus(registry)
        assert "\\\\" in text and '\\"' in text and "\\n" in text
        # The raw newline must not appear inside the label value.
        for line in text.splitlines():
            assert "\n" not in line
        parsed = parse_prometheus(text)
        assert parsed["samples"][("esc_total", (("k", nasty),))] == 1.0

    def test_histogram_bucket_sum_count_invariants(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat_seconds", labels={"phase": "p"}, buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 5.0, 0.05):
            hist.observe(value)
        parsed = parse_prometheus(render_prometheus(registry))
        samples = parsed["samples"]
        base = (("phase", "p"),)
        buckets = [
            samples[("lat_seconds_bucket", tuple(sorted(base + (("le", le),))))]
            for le in ("0.1", "1", "+Inf")
        ]
        # Cumulative and non-decreasing, +Inf equals _count.
        assert buckets == [2.0, 3.0, 4.0]
        assert buckets == sorted(buckets)
        assert samples[("lat_seconds_count", base)] == buckets[-1] == 4.0
        assert samples[("lat_seconds_sum", base)] == pytest.approx(5.6)
        assert parsed["types"]["lat_seconds"] == "histogram"

    def test_le_labels_render_in_ascending_bound_order(self):
        registry = MetricsRegistry()
        registry.histogram("h_seconds", buckets=(0.01, 0.1, 1.0)).observe(0.5)
        text = render_prometheus(registry)
        le_values = []
        for line in text.splitlines():
            if line.startswith("h_seconds_bucket"):
                start = line.index('le="') + 4
                le_values.append(line[start : line.index('"', start)])
        assert le_values == ["0.01", "0.1", "1", "+Inf"]

    def test_parser_round_trip_full_registry(self):
        registry = MetricsRegistry()
        registry.counter("a_total", help="with help").inc(7)
        registry.gauge("b", labels={"x": "1", "y": "2"}).set(-2.25)
        registry.histogram("c_seconds", buckets=(1.0,)).observe(0.5)
        parsed = parse_prometheus(render_prometheus(registry))
        assert parsed["helps"]["a_total"] == "with help"
        assert parsed["samples"][("a_total", ())] == 7.0
        assert parsed["samples"][("b", (("x", "1"), ("y", "2")))] == -2.25
        assert parsed["samples"][("c_seconds_bucket", (("le", "1"),))] == 1.0
        assert parsed["types"] == {"a_total": "counter", "b": "gauge", "c_seconds": "histogram"}

    def test_parser_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_prometheus("not a metric line !!!\n")

    def test_inf_sample_values(self):
        parsed = parse_prometheus("x_bucket{le=\"+Inf\"} 3\n")
        assert parsed["samples"][("x_bucket", (("le", "+Inf"),))] == 3.0


class TestTimingRecorderBridge:
    def test_measure_feeds_phase_histogram(self):
        registry = MetricsRegistry()
        recorder = TimingRecorder(registry=registry)
        with recorder.measure("score"):
            pass
        recorder.add("score", 0.5)
        hist = registry.histogram(PHASE_HISTOGRAM, labels={"phase": "score"})
        assert hist.count == 2
        assert hist.sum == pytest.approx(recorder.total("score"))

    def test_default_recorder_binds_global_registry(self):
        registry = MetricsRegistry()
        previous = set_registry(registry)
        try:
            recorder = TimingRecorder()
            recorder.add("phase", 1.0)
        finally:
            set_registry(previous)
        hist = registry.histogram(PHASE_HISTOGRAM, labels={"phase": "phase"})
        assert hist.count == 1

    def test_null_registry_recorder_still_records_samples(self):
        recorder = TimingRecorder(registry=NULL_REGISTRY)
        recorder.add("phase", 2.0)
        assert recorder.total("phase") == pytest.approx(2.0)
