"""Tests for the block-structure representation."""

import numpy as np
import pytest

from repro.kge.scoring.blocks import (
    CLASSICAL_STRUCTURES,
    BlockStructure,
    analogy_structure,
    classical_structure,
    complex_structure,
    distmult_structure,
    render_structure,
    simple_structure,
)


class TestConstruction:
    def test_blocks_sorted_and_hashable(self):
        a = BlockStructure([(1, 1, 1, 1), (0, 0, 0, 1)])
        b = BlockStructure([(0, 0, 0, 1), (1, 1, 1, 1)])
        assert a == b
        assert hash(a) == hash(b)
        assert a.key() == b.key()

    def test_duplicate_cell_rejected(self):
        with pytest.raises(ValueError):
            BlockStructure([(0, 0, 0, 1), (0, 0, 1, -1)])

    def test_bad_sign(self):
        with pytest.raises(ValueError):
            BlockStructure([(0, 0, 0, 2)])

    def test_index_out_of_range(self):
        with pytest.raises(ValueError):
            BlockStructure([(4, 0, 0, 1)])
        with pytest.raises(ValueError):
            BlockStructure([(0, 0, 5, 1)])

    def test_wrong_arity(self):
        with pytest.raises(ValueError):
            BlockStructure([(0, 0, 0)])

    def test_len_and_num_blocks(self):
        structure = distmult_structure()
        assert len(structure) == 4
        assert structure.num_blocks == 4

    def test_components_used(self):
        structure = BlockStructure([(0, 0, 2, 1), (1, 1, 2, -1)])
        assert structure.components_used() == [2]

    def test_cells(self):
        structure = BlockStructure([(0, 1, 0, 1), (2, 3, 1, -1)])
        assert set(structure.cells()) == {(0, 1), (2, 3)}


class TestSubstituteMatrix:
    def test_distmult_matrix(self):
        matrix = distmult_structure().substitute_matrix()
        np.testing.assert_array_equal(matrix, np.diag([1, 2, 3, 4]))

    def test_negative_sign_encoding(self):
        structure = BlockStructure([(0, 1, 2, -1)])
        matrix = structure.substitute_matrix()
        assert matrix[0, 1] == -3

    def test_round_trip(self):
        for structure in CLASSICAL_STRUCTURES.values():
            rebuilt = BlockStructure.from_substitute_matrix(structure.substitute_matrix())
            assert rebuilt.key() == structure.key()

    def test_from_matrix_invalid_value(self):
        matrix = np.zeros((4, 4), dtype=int)
        matrix[0, 0] = 7
        with pytest.raises(ValueError):
            BlockStructure.from_substitute_matrix(matrix)

    def test_from_matrix_wrong_shape(self):
        with pytest.raises(ValueError):
            BlockStructure.from_substitute_matrix(np.zeros((3, 3), dtype=int))


class TestRelationMatrixAndScore:
    def test_distmult_relation_matrix_is_diagonal(self):
        r = np.arange(1.0, 9.0)
        matrix = distmult_structure().relation_matrix(r)
        np.testing.assert_allclose(matrix, np.diag(r))

    def test_score_matches_relation_matrix_form(self, rng):
        dimension = 8
        for structure in (complex_structure(), simple_structure(), analogy_structure()):
            h = rng.normal(size=dimension)
            r = rng.normal(size=dimension)
            t = rng.normal(size=dimension)
            direct = structure.score(h, r, t)
            via_matrix = float(h @ structure.relation_matrix(r) @ t)
            assert direct == pytest.approx(via_matrix, rel=1e-10)

    def test_score_shape_mismatch(self):
        with pytest.raises(ValueError):
            distmult_structure().score(np.ones(8), np.ones(8), np.ones(4))

    def test_relation_matrix_requires_divisible_dimension(self):
        with pytest.raises(ValueError):
            distmult_structure().relation_matrix(np.ones(6))


class TestHelpers:
    def test_with_block_adds(self):
        structure = BlockStructure([(0, 0, 0, 1)])
        extended = structure.with_block(1, 1, 1, -1)
        assert extended.num_blocks == 2
        assert structure.num_blocks == 1

    def test_with_block_occupied_cell_raises(self):
        structure = BlockStructure([(0, 0, 0, 1)])
        with pytest.raises(ValueError):
            structure.with_block(0, 0, 1, 1)

    def test_transpose(self):
        structure = BlockStructure([(0, 1, 2, -1)])
        transposed = structure.transpose()
        assert transposed.blocks == ((1, 0, 2, -1),)

    def test_transpose_of_symmetric_structure_is_same(self):
        assert distmult_structure().transpose().key() == distmult_structure().key()

    def test_render_contains_all_entries(self):
        text = render_structure(complex_structure())
        assert "+r1" in text and "-r3" in text

    def test_str_is_render(self):
        assert str(distmult_structure()) == render_structure(distmult_structure())


class TestClassicalRegistry:
    def test_lookup_by_name(self):
        assert classical_structure("DistMult").name == "DistMult"
        assert classical_structure("cp").key() == simple_structure().key()

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            classical_structure("transformer")

    @pytest.mark.parametrize("name,expected_blocks", [
        ("distmult", 4), ("complex", 8), ("analogy", 6), ("simple", 4),
    ])
    def test_block_counts(self, name, expected_blocks):
        assert classical_structure(name).num_blocks == expected_blocks
