"""End-to-end integration tests: the full AutoSF workflow on a miniature KG."""

import numpy as np
import pytest

pytestmark = pytest.mark.slow  # tier 2: run with --runslow

from repro.analysis import CaseStudy, transfer_matrix
from repro.core import AutoSFSearch, CandidateEvaluator, RandomSearch
from repro.datasets import dataset_statistics, load_benchmark
from repro.kge import train_model
from repro.utils.config import PredictorConfig, SearchConfig, TrainingConfig


@pytest.fixture(scope="module")
def benchmark_graph():
    return load_benchmark("wn18rr", scale=0.3)


@pytest.fixture(scope="module")
def training_config():
    return TrainingConfig(dimension=16, epochs=12, batch_size=128, learning_rate=0.5, seed=0)


@pytest.fixture(scope="module")
def search_result(benchmark_graph, training_config):
    search_config = SearchConfig(
        max_blocks=6,
        candidates_per_step=12,
        top_parents=4,
        train_per_step=4,
        predictor=PredictorConfig(epochs=100),
        seed=0,
    )
    return AutoSFSearch(benchmark_graph, training_config, search_config).run()


class TestSearchPipeline:
    def test_search_finds_reasonable_model(self, search_result):
        """The searched SF must clearly beat an untrained/random baseline."""
        assert search_result.best_mrr > 0.15

    def test_searched_structure_trains_and_evaluates(self, benchmark_graph, training_config, search_result):
        model = train_model(benchmark_graph, search_result.best_structure, training_config)
        test_result = model.evaluate(benchmark_graph, split="test")
        assert test_result.mrr > 0.1

    def test_search_beats_or_matches_worst_seed(self, search_result):
        per_stage = search_result.best_per_stage()
        stage4 = [r.validation_mrr for r in search_result.records if r.num_blocks == 4]
        assert search_result.best_mrr >= min(stage4)
        assert 4 in per_stage

    def test_case_study_of_searched_structure(self, benchmark_graph, search_result):
        statistics = dataset_statistics(benchmark_graph)
        study = CaseStudy(
            benchmark_graph.name, search_result.best_structure, search_result.best_mrr, statistics
        )
        report = study.report()
        assert benchmark_graph.name in report
        assert isinstance(study.is_novel(), bool)

    def test_searched_vs_human_designed(self, benchmark_graph, training_config, search_result):
        """Qualitative Table IV check: AutoSF is competitive with DistMult."""
        distmult = train_model(benchmark_graph, "distmult", training_config)
        distmult_mrr = distmult.evaluate(benchmark_graph, split="valid").mrr
        assert search_result.best_mrr >= distmult_mrr - 0.1


class TestSharedEvaluatorComparison:
    def test_greedy_vs_random_same_budget(self, benchmark_graph, training_config):
        """Fig. 6 sanity: with a shared evaluator both searchers run and report curves."""
        evaluator = CandidateEvaluator(benchmark_graph, training_config)
        budget = 6
        greedy = AutoSFSearch(
            benchmark_graph,
            training_config,
            SearchConfig(max_blocks=6, candidates_per_step=8, top_parents=3, train_per_step=2, seed=1),
            evaluator=evaluator,
        ).run(max_evaluations=budget)
        random = RandomSearch(benchmark_graph, training_config, num_blocks=6, seed=1).run(
            max_evaluations=budget
        )
        assert len(greedy.anytime_curve()) <= budget
        assert len(random.anytime_curve()) == budget
        assert greedy.best_mrr > 0 and random.best_mrr > 0


class TestTransferSmoke:
    def test_two_dataset_transfer(self, benchmark_graph, training_config, search_result):
        other = load_benchmark("fb15k237", scale=0.25)
        other_search = AutoSFSearch(
            other,
            training_config,
            SearchConfig(max_blocks=6, candidates_per_step=8, top_parents=3, train_per_step=2, seed=0),
        ).run(max_evaluations=7)
        result = transfer_matrix(
            {benchmark_graph.name: benchmark_graph, other.name: other},
            {benchmark_graph.name: search_result.best_structure, other.name: other_search.best_structure},
            training_config,
            split="valid",
        )
        assert len(result.as_rows()) == 2
        for source in result.dataset_names:
            for target in result.dataset_names:
                assert 0.0 <= result.mrr(source, target) <= 1.0
