"""Shared configuration for the benchmark harness.

Every benchmark regenerates one table or figure of the AutoSF paper on the
miniature benchmarks.  The knobs below trade fidelity for wall-clock time;
set the environment variable ``REPRO_BENCH_SCALE`` (default 0.3) and
``REPRO_BENCH_EPOCHS`` (default 12) to run larger, slower reproductions.
"""

from __future__ import annotations

import os
import subprocess
from pathlib import Path
from typing import Any, Dict

try:  # CI benchmark jobs install only numpy; the fixture below is optional.
    import pytest
except ImportError:  # pragma: no cover - exercised on minimal installs
    pytest = None

from repro.utils.config import PredictorConfig, SearchConfig, TrainingConfig
from repro.utils.serialization import to_json_file

#: Fraction of the miniature-profile size used by default in benches.
BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.3"))
#: Training epochs per candidate model in benches.
BENCH_EPOCHS = int(os.environ.get("REPRO_BENCH_EPOCHS", "12"))
#: Embedding dimension used during benches (the paper searches at d=64).
BENCH_DIMENSION = int(os.environ.get("REPRO_BENCH_DIMENSION", "16"))

#: Where the printed tables are also written as text files.
RESULTS_DIR = Path(__file__).parent / "results"

#: Repository root — ``BENCH_<area>.json`` trajectory files land here so the
#: perf history of a checkout is visible at a glance (and easy for CI to
#: upload as artifacts).
REPO_ROOT = Path(__file__).resolve().parent.parent

#: Version of the ``BENCH_<area>.json`` payload layout.
BENCH_SCHEMA_VERSION = 1


def git_revision() -> str:
    """The current git commit hash, or ``"unknown"`` outside a checkout."""
    try:
        completed = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            check=True,
            timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    return completed.stdout.strip() or "unknown"


def write_bench_summary(area: str, config: Dict[str, Any], metrics: Dict[str, Any]) -> Path:
    """Write the machine-readable ``BENCH_<area>.json`` trajectory file.

    Every ``bench_*.py --quick`` run records its headline numbers here
    (see ``run_all.py``), one file per benchmark area at the repo root::

        {"schema_version": 1, "area": ..., "revision": <git hash>,
         "config": {...knobs that shaped the run...},
         "metrics": {...headline numbers...}}

    Comparing the same area's file across revisions gives the perf
    trajectory of the project without re-running old checkouts.
    """
    payload = {
        "schema_version": BENCH_SCHEMA_VERSION,
        "area": area,
        "revision": git_revision(),
        "config": config,
        "metrics": metrics,
    }
    return to_json_file(payload, REPO_ROOT / f"BENCH_{area}.json")


def bench_training_config(**overrides) -> TrainingConfig:
    """The shared per-candidate training configuration."""
    settings = dict(
        dimension=BENCH_DIMENSION,
        epochs=BENCH_EPOCHS,
        batch_size=256,
        learning_rate=0.5,
        l2_penalty=1e-4,
        seed=0,
    )
    settings.update(overrides)
    return TrainingConfig(**settings)


def bench_search_config(**overrides) -> SearchConfig:
    """The shared search configuration (a scaled-down Alg. 2)."""
    settings = dict(
        max_blocks=6,
        candidates_per_step=16,
        top_parents=5,
        train_per_step=4,
        predictor=PredictorConfig(epochs=150),
        seed=0,
    )
    settings.update(overrides)
    return SearchConfig(**settings)


def publish(name: str, text: str) -> None:
    """Print a result table and persist it under benchmarks/results/."""
    print("\n" + text)
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")


if pytest is not None:

    @pytest.fixture(scope="session")
    def results_dir() -> Path:
        RESULTS_DIR.mkdir(parents=True, exist_ok=True)
        return RESULTS_DIR
