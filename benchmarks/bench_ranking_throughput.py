"""Ranking-throughput benchmark for the vectorized filtered protocol.

Two measurements back the execution-engine work:

* **filtered ranking**: queries/second of the vectorized ``compute_ranks``
  against the scalar reference implementation on the largest built-in
  benchmark (yago310-mini at full miniature scale), including the speedup
  factor;
* **search wall-clock**: one small greedy search executed by the serial
  backend vs the process-pool backend (1 vs N workers).

Results are published as a table *and* as ``results/ranking_throughput.json``
so the speedup can be tracked across revisions.  Runs either under pytest
(``pytest bench_ranking_throughput.py --runslow``) or standalone::

    PYTHONPATH=src python benchmarks/bench_ranking_throughput.py --quick

The standalone entry point also records the headline numbers in
``BENCH_ranking.json`` at the repo root (see ``run_all.py``).
"""

from __future__ import annotations

import argparse
import os
import time

from _helpers import (
    bench_search_config,
    bench_training_config,
    publish,
    write_bench_summary,
    RESULTS_DIR,
)

from repro.analysis import format_table
from repro.core import AutoSFSearch, ProcessPoolBackend, SerialBackend
from repro.datasets import load_benchmark
from repro.kge.evaluation import compute_ranks, compute_ranks_reference
from repro.kge.scoring.bilinear import BlockScoringFunction
from repro.kge.scoring.blocks import classical_structure
from repro.kge.trainer import Trainer
from repro.utils.serialization import to_json_file

#: The largest built-in miniature benchmark.
LARGEST_BENCHMARK = "yago310"

#: Worker count for the parallel-search measurement.
NUM_WORKERS = int(os.environ.get("REPRO_BENCH_WORKERS", "2"))

SEARCH_BUDGET = 6


def _time(function, repeats: int = 3) -> float:
    """Best-of-N wall-clock seconds (best-of to suppress scheduler noise)."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = function()
        best = min(best, time.perf_counter() - start)
    assert result is not None
    return best


def measure_ranking(repeats: int = 3) -> dict:
    graph = load_benchmark(LARGEST_BENCHMARK, scale=1.0)
    scoring_function = BlockScoringFunction(classical_structure("simple"))
    config = bench_training_config(epochs=2)
    params, _history = Trainer(scoring_function, config).fit(graph)

    vectorized_seconds = _time(
        lambda: compute_ranks(scoring_function, params, graph), repeats=repeats
    )
    reference_seconds = _time(
        lambda: compute_ranks_reference(scoring_function, params, graph), repeats=repeats
    )
    num_queries = 2 * graph.num_test  # tail + head query per test triple
    return {
        "benchmark": graph.name,
        "entities": graph.num_entities,
        "queries": num_queries,
        "scalar_qps": num_queries / reference_seconds,
        "vectorized_qps": num_queries / vectorized_seconds,
        "speedup": reference_seconds / vectorized_seconds,
    }


def measure_search_wall_clock(budget: int = SEARCH_BUDGET) -> dict:
    graph = load_benchmark(LARGEST_BENCHMARK)
    training_config = bench_training_config(epochs=4)
    search_config = bench_search_config()

    start = time.perf_counter()
    serial = AutoSFSearch(graph, training_config, search_config, backend=SerialBackend()).run(
        max_evaluations=budget
    )
    serial_seconds = time.perf_counter() - start

    start = time.perf_counter()
    parallel = AutoSFSearch(
        graph, training_config, search_config, backend=ProcessPoolBackend(NUM_WORKERS)
    ).run(max_evaluations=budget)
    parallel_seconds = time.perf_counter() - start

    assert serial.best_mrr == parallel.best_mrr, "backends must agree bitwise"
    return {
        "benchmark": graph.name,
        "evaluations": serial.num_evaluations,
        "serial_seconds": serial_seconds,
        f"process_x{NUM_WORKERS}_seconds": parallel_seconds,
        "workers": NUM_WORKERS,
    }


def build_report(quick: bool = False) -> tuple:
    ranking = measure_ranking(repeats=1 if quick else 3)
    search = measure_search_wall_clock(budget=4 if quick else SEARCH_BUDGET)
    table = format_table(
        [ranking], title="Filtered-ranking throughput (vectorized vs scalar reference)"
    ) + "\n" + format_table([search], title="Search wall-clock, 1 vs N workers")
    note = (
        "Serial and process backends return bitwise-identical SearchResults;\n"
        "the speedup column tracks the vectorized compute_ranks hot path."
    )
    return table + "\n" + note, {"ranking": ranking, "search": search}


def test_ranking_throughput(benchmark):
    text, data = benchmark.pedantic(build_report, rounds=1, iterations=1)
    publish("ranking_throughput", text)
    to_json_file(data, RESULTS_DIR / "ranking_throughput.json")
    # Acceptance: the vectorized path is at least 3x the scalar reference on
    # the largest built-in benchmark (in practice it is far beyond that).
    assert data["ranking"]["speedup"] >= 3.0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: single repeat, smaller search budget",
    )
    args = parser.parse_args(argv)

    text, data = build_report(quick=args.quick)
    publish("ranking_throughput", text)
    to_json_file(data, RESULTS_DIR / "ranking_throughput.json")
    write_bench_summary(
        "ranking",
        config={
            "quick": args.quick,
            "benchmark": data["ranking"]["benchmark"],
            "entities": data["ranking"]["entities"],
            "workers": data["search"]["workers"],
        },
        metrics={
            "vectorized_qps": data["ranking"]["vectorized_qps"],
            "scalar_qps": data["ranking"]["scalar_qps"],
            "ranking_speedup": data["ranking"]["speedup"],
            "search_serial_seconds": data["search"]["serial_seconds"],
        },
    )
    if data["ranking"]["speedup"] < 3.0:
        print(f"FAIL: ranking speedup {data['ranking']['speedup']:.2f}x below the 3x floor")
        return 1
    print(f"OK: vectorized ranking {data['ranking']['speedup']:.2f}x over the scalar reference")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
