"""Table VII — running-time breakdown of one greedy step.

The paper reports, per dataset, how much time one greedy step spends in the
filter, the predictor, model training and evaluation, showing that the two
cheap components (filter + predictor) are negligible next to training.  The
bench runs one scaled-down greedy search per miniature benchmark and reports
the same per-phase breakdown (in seconds rather than minutes, since the
miniatures are far smaller than the real datasets).
"""

from __future__ import annotations

from _helpers import BENCH_SCALE, bench_search_config, bench_training_config, publish

from repro.analysis import format_table
from repro.core import AutoSFSearch
from repro.datasets import available_benchmarks, load_benchmark

#: Paper-reported per-step times in minutes (filter, predictor, train, evaluate).
PAPER_MINUTES = {
    "wn18": (15.9, 1.8, 475.9, 41.3),
    "fb15k": (16.8, 1.9, 886.3, 153.7),
    "wn18rr": (16.1, 1.8, 271.4, 27.9),
    "fb15k237": (16.6, 1.9, 439.2, 63.5),
    "yago310": (16.6, 1.7, 1631.1, 141.9),
}

SEARCH_BUDGET = 9


def build_table() -> str:
    rows = []
    for benchmark_name in available_benchmarks():
        graph = load_benchmark(benchmark_name, scale=BENCH_SCALE)
        search = AutoSFSearch(graph, bench_training_config(), bench_search_config())
        search.run(max_evaluations=SEARCH_BUDGET)
        summary = search.timing.summary()
        paper = PAPER_MINUTES[benchmark_name]
        measured_train = summary.get("train", {}).get("total", 0.0)
        rows.append(
            {
                "dataset": benchmark_name,
                "filter_s": summary.get("filter", {}).get("total", 0.0),
                "predictor_s": summary.get("predictor", {}).get("total", 0.0),
                "train_s": measured_train,
                "evaluate_s": summary.get("evaluate", {}).get("total", 0.0),
                "train_share_measured": measured_train / max(sum(v["total"] for v in summary.values()), 1e-9),
                "train_share_paper": paper[2] / sum(paper),
            }
        )
    table = format_table(
        rows,
        title="Table VII: per-phase running time of the greedy search (seconds, miniature scale)",
    )
    note = (
        "Shape check: training dominates the budget both in the paper (minutes on GPUs)\n"
        "and here (seconds on CPU); filter and predictor remain comparatively negligible."
    )
    return table + "\n" + note


def test_table7_running_time(benchmark):
    table = benchmark.pedantic(build_table, rounds=1, iterations=1)
    publish("table7_running_time", table)
    assert "train_s" in table
