"""Unified benchmark runner: one command, one ``BENCH_<area>.json`` per area.

Runs each registered standalone benchmark entry point (in ``--quick`` mode
by default) as a subprocess, prints a final per-area PASS/FAIL scoreboard,
and verifies that every run refreshed its machine-readable trajectory file
at the repo root::

    PYTHONPATH=src python benchmarks/run_all.py                 # all areas, quick
    PYTHONPATH=src python benchmarks/run_all.py --areas training query
    PYTHONPATH=src python benchmarks/run_all.py --full          # slower, tighter floors

Each area file has the shared schema written by
:func:`_helpers.write_bench_summary` (``schema_version`` / ``area`` /
``revision`` / ``config`` / ``metrics``), so comparing a file across
revisions — or across CI artifact uploads — gives the perf trajectory of
the project without re-running old checkouts.  A bench whose acceptance
assertion fails (e.g. the sparse engine dropping below its speedup floor)
fails the whole run.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
from pathlib import Path

from _helpers import BENCH_SCHEMA_VERSION, REPO_ROOT

BENCH_DIR = Path(__file__).resolve().parent

#: area -> benchmark script with a standalone ``main(--quick)`` entry point
#: that writes ``BENCH_<area>.json`` via ``_helpers.write_bench_summary``.
AREAS = {
    "training": "bench_training_throughput.py",
    "ranking": "bench_ranking_throughput.py",
    "query": "bench_query_throughput.py",
    "search": "bench_search_strategies.py",
    "dataset": "bench_dataset_pipeline.py",
    "serving": "bench_serving_load.py",
    "live": "bench_live_ingest.py",
    "obs": "obs_smoke.py",
}


def run_area(area: str, quick: bool) -> bool:
    """Run one area's benchmark; return whether it passed and wrote its file."""
    script = BENCH_DIR / AREAS[area]
    summary_path = REPO_ROOT / f"BENCH_{area}.json"
    stale_revision = None
    if summary_path.exists():
        try:
            stale_revision = json.loads(summary_path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            stale_revision = None
        summary_path.unlink()

    command = [sys.executable, str(script)]
    if quick:
        command.append("--quick")
    # Children run with cwd=benchmarks/, so hand them the absolute src path
    # (a relative PYTHONPATH=src from the repo root would stop resolving).
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(REPO_ROOT / "src")]
        + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    print(f"[{area}] {' '.join(command[1:])}", flush=True)
    completed = subprocess.run(command, cwd=BENCH_DIR, env=env)
    if completed.returncode != 0:
        print(f"[{area}] FAIL: exit code {completed.returncode}")
        return False

    if not summary_path.exists():
        print(f"[{area}] FAIL: {summary_path.name} was not written")
        return False
    try:
        summary = json.loads(summary_path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as error:
        print(f"[{area}] FAIL: {summary_path.name} is not valid JSON ({error})")
        return False
    for field in ("schema_version", "area", "revision", "config", "metrics"):
        if field not in summary:
            print(f"[{area}] FAIL: {summary_path.name} is missing {field!r}")
            return False
    if summary["schema_version"] != BENCH_SCHEMA_VERSION or summary["area"] != area:
        print(f"[{area}] FAIL: {summary_path.name} has the wrong schema/area")
        return False
    if stale_revision is not None and stale_revision.get("revision") != summary["revision"]:
        print(f"[{area}] note: revision moved {stale_revision.get('revision')} "
              f"-> {summary['revision']}")
    print(f"[{area}] OK: wrote {summary_path.name}")
    return True


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--areas",
        nargs="+",
        choices=sorted(AREAS),
        default=sorted(AREAS),
        help="benchmark areas to run (default: all)",
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="run without --quick (slower, tighter acceptance floors)",
    )
    args = parser.parse_args(argv)

    outcomes = [(area, run_area(area, quick=not args.full)) for area in args.areas]
    failures = [area for area, passed in outcomes if not passed]

    # Final scoreboard (hand-formatted: run_all deliberately imports no
    # repro code, so a broken src tree still reports per-area results).
    width = max(len("area"), max(len(area) for area, _ in outcomes))
    print(f"\n{'area'.ljust(width)}  result")
    print(f"{'-' * width}  ------")
    for area, passed in outcomes:
        print(f"{area.ljust(width)}  {'PASS' if passed else 'FAIL'}")

    if failures:
        print(f"FAIL: {len(failures)}/{len(args.areas)} areas failed: {', '.join(failures)}")
        return 1
    print(f"OK: {len(args.areas)} areas wrote BENCH_<area>.json at {REPO_ROOT}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
