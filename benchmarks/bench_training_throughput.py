"""Training-throughput benchmark: batched and sparse engines vs the reference loop.

Measures the per-candidate training hot path (Alg. 1) that dominates every
greedy-search run:

* **throughput (multi-class)**: wall-clock of ``Trainer.fit`` under the
  reference engine vs the batched engine (unchunked and entity-chunked) on
  the largest built-in miniature benchmark, for a 2-block classical
  structure and a 6-block search-space structure, including the speedup
  factors;
* **throughput (pairwise / sparse)**: wall-clock of the sparse engine vs the
  batched engine under a sampled pairwise loss on a large-vocabulary
  synthetic graph — the regime where dense engines pay O(vocabulary) per
  batch and the sparse engine pays O(batch).  Includes a triples/sec vs
  embedding-dimension curve for both engines;
* **parity**: the engines must agree on final parameters to ``atol=1e-10``
  (measured, not assumed — the run fails otherwise).  The sparse engine is
  checked against the reference loop with ``l2_penalty=0`` (its lazy
  regularization is only exact at zero weight);
* **peak memory**: ``tracemalloc`` peak of one training run with and without
  ``score_chunk_size``, demonstrating that chunked scoring bounds the
  transient score matrices.

Runs standalone (CI calls it with ``--quick`` and uploads the JSON timings
as an artifact)::

    PYTHONPATH=src python benchmarks/bench_training_throughput.py --quick

Results are printed as a table and written to
``benchmarks/results/training_throughput.json``; the headline numbers also
land in ``BENCH_training.json`` at the repo root (see ``run_all.py``) so
regressions are visible per revision.
"""

from __future__ import annotations

import argparse
import time
import tracemalloc

import numpy as np

from _helpers import bench_training_config, publish, write_bench_summary, RESULTS_DIR

from repro.analysis import format_table
from repro.datasets import load_benchmark
from repro.datasets.knowledge_graph import KnowledgeGraph
from repro.kge.scoring.bilinear import BlockScoringFunction
from repro.kge.scoring.blocks import BlockStructure, classical_structure
from repro.kge.trainer import Trainer
from repro.utils.serialization import to_json_file

#: The largest built-in miniature benchmark.
LARGEST_BENCHMARK = "yago310"

#: A representative 6-block structure (the search trains mostly 4-6 block SFs).
SIX_BLOCK_STRUCTURE = BlockStructure(
    [(0, 0, 0, 1), (1, 1, 1, 1), (2, 3, 2, 1), (3, 2, 2, -1), (0, 1, 3, 1), (1, 0, 3, -1)],
    name="six-blocks",
)

#: Entity-chunk size used for the chunked measurements.
CHUNK_SIZE = 128

#: Vocabulary size of the synthetic large-vocab graph for the sparse-engine
#: section (quick mode shrinks it — the dense engines scale with this).
SPARSE_VOCAB = {"quick": 6000, "full": 20000}
SPARSE_TRIPLES = {"quick": 2000, "full": 6000}

#: Embedding dimensions of the triples/sec-vs-dimension curve.
SPARSE_DIMENSIONS = {"quick": (16, 32), "full": (16, 32, 64, 128)}


def _fit(graph, structure, config, engine: str, chunk: int = 0):
    run_config = config.replace(train_engine=engine, score_chunk_size=chunk)
    scoring_function = BlockScoringFunction(structure)
    trainer = Trainer(scoring_function, run_config)
    return trainer.fit(graph)


def _time_fit(graph, structure, config, engine: str, chunk: int = 0, repeats: int = 3) -> float:
    """Best-of-N wall-clock seconds (best-of to suppress scheduler noise)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        _fit(graph, structure, config, engine, chunk)
        best = min(best, time.perf_counter() - start)
    return best


def measure_throughput(graph, config, repeats: int) -> list:
    rows = []
    for label, structure in (
        ("simple (2 blocks)", classical_structure("simple")),
        ("six-blocks (6 blocks)", SIX_BLOCK_STRUCTURE),
    ):
        reference = _time_fit(graph, structure, config, "reference", repeats=repeats)
        batched = _time_fit(graph, structure, config, "batched", repeats=repeats)
        chunked = _time_fit(
            graph, structure, config, "batched", chunk=CHUNK_SIZE, repeats=repeats
        )
        rows.append(
            {
                "structure": label,
                "reference_s": reference,
                "batched_s": batched,
                f"chunked_{CHUNK_SIZE}_s": chunked,
                "speedup": reference / batched,
                "chunked_speedup": reference / chunked,
            }
        )
    return rows


def check_parity(graph, config) -> float:
    """Max |param difference| between engines (must stay within 1e-10)."""
    reference_params, _ = _fit(graph, SIX_BLOCK_STRUCTURE, config, "reference")
    batched_params, _ = _fit(graph, SIX_BLOCK_STRUCTURE, config, "batched")
    chunked_params, _ = _fit(graph, SIX_BLOCK_STRUCTURE, config, "batched", chunk=CHUNK_SIZE)
    worst = 0.0
    for key in reference_params:
        worst = max(worst, float(np.abs(batched_params[key] - reference_params[key]).max()))
        worst = max(worst, float(np.abs(chunked_params[key] - reference_params[key]).max()))
    return worst


def measure_peak_memory(graph, config) -> dict:
    """tracemalloc peaks of one epoch, unchunked vs chunked scoring."""
    memory_config = config.replace(epochs=1)
    peaks = {}
    for label, chunk in (("unchunked", 0), (f"chunk_{CHUNK_SIZE}", CHUNK_SIZE)):
        tracemalloc.start()
        _fit(graph, SIX_BLOCK_STRUCTURE, memory_config, "batched", chunk)
        _current, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        peaks[label] = peak
    return peaks


# ----------------------------------------------------------------------
# Sparse-engine section: pairwise losses at large vocabularies
# ----------------------------------------------------------------------
def synthetic_large_vocab_graph(num_entities: int, num_triples: int, seed: int = 0):
    """A uniform-random graph whose vocabulary dwarfs its batch size.

    Link-prediction quality is irrelevant here — only the shapes matter:
    dense engines score every query against ``num_entities`` candidates,
    the sparse engine against the handful of touched rows.
    """
    rng = np.random.default_rng(seed)
    num_relations = 20

    def triples(count):
        return np.stack(
            [
                rng.integers(0, num_entities, count),
                rng.integers(0, num_relations, count),
                rng.integers(0, num_entities, count),
            ],
            axis=1,
        ).astype(np.int64)

    return KnowledgeGraph(
        num_entities=num_entities,
        num_relations=num_relations,
        train=triples(num_triples),
        valid=triples(50),
        test=triples(50),
        name=f"synthetic-{num_entities}e",
    )


def pairwise_config(dimension: int, epochs: int):
    """Small-batch pairwise-loss training config (the sparse engine's regime).

    ``l2_penalty=0`` keeps the sparse engine's lazy regularization exactly
    equal to the dense engines, so parity stays measurable at 1e-10.
    """
    return bench_training_config(
        dimension=dimension,
        epochs=epochs,
        batch_size=128,
        learning_rate=0.1,
        l2_penalty=0.0,
        loss="logistic",
        negative_samples=8,
    )


def measure_sparse_throughput(graph, epochs: int, dimensions, repeats: int) -> list:
    """triples/sec of batched vs sparse per embedding dimension."""
    structure = classical_structure("simple")
    triples_per_run = epochs * graph.train.shape[0]
    rows = []
    for dimension in dimensions:
        config = pairwise_config(dimension, epochs)
        batched = _time_fit(graph, structure, config, "batched", repeats=repeats)
        sparse = _time_fit(graph, structure, config, "sparse", repeats=repeats)
        rows.append(
            {
                "dimension": dimension,
                "batched_s": batched,
                "sparse_s": sparse,
                "batched_triples_per_s": triples_per_run / batched,
                "sparse_triples_per_s": triples_per_run / sparse,
                "sparse_speedup": batched / sparse,
            }
        )
    return rows


def check_sparse_parity(graph, dimension: int, epochs: int) -> float:
    """Max |param delta| sparse vs reference (must stay within 1e-10)."""
    config = pairwise_config(dimension, epochs)
    structure = classical_structure("simple")
    reference_params, _ = _fit(graph, structure, config, "reference")
    sparse_params, _ = _fit(graph, structure, config, "sparse")
    worst = 0.0
    for key in reference_params:
        worst = max(worst, float(np.abs(sparse_params[key] - reference_params[key]).max()))
    return worst


def build_report(quick: bool) -> tuple:
    graph = load_benchmark(LARGEST_BENCHMARK, scale=1.0)
    config = bench_training_config(epochs=3 if quick else 8)
    repeats = 1 if quick else 3
    mode = "quick" if quick else "full"

    throughput = measure_throughput(graph, config, repeats)
    parity = check_parity(graph, config.replace(epochs=2 if quick else 4))
    memory = measure_peak_memory(graph, config)

    sparse_graph = synthetic_large_vocab_graph(SPARSE_VOCAB[mode], SPARSE_TRIPLES[mode])
    sparse_epochs = 1 if quick else 2
    sparse_dimensions = SPARSE_DIMENSIONS[mode]
    sparse_curve = measure_sparse_throughput(
        sparse_graph, sparse_epochs, sparse_dimensions, repeats
    )
    # Parity on a smaller instance: the reference engine is the slow part.
    sparse_parity_graph = synthetic_large_vocab_graph(1500, 600)
    sparse_parity = check_sparse_parity(sparse_parity_graph, sparse_dimensions[0], 2)

    table = format_table(
        throughput,
        title=f"Training throughput on {graph.name} "
        f"(E={graph.num_entities}, {graph.train.shape[0]} train triples)",
    )
    sparse_table = format_table(
        sparse_curve,
        title=f"Pairwise-loss throughput on {sparse_graph.name} "
        f"(E={sparse_graph.num_entities}, {sparse_graph.train.shape[0]} train "
        f"triples, batch=128, 8 negatives): sparse vs batched by dimension",
    )
    note = (
        f"max |param delta| across dense engines: {parity:.2e} (bound: 1e-10)\n"
        f"max |param delta| sparse vs reference: {sparse_parity:.2e} (bound: 1e-10)\n"
        f"peak traced memory: unchunked {memory['unchunked'] / 1e6:.1f} MB, "
        f"chunk={CHUNK_SIZE} {memory[f'chunk_{CHUNK_SIZE}'] / 1e6:.1f} MB"
    )
    data = {
        "benchmark": graph.name,
        "entities": graph.num_entities,
        "quick": quick,
        "throughput": throughput,
        "max_param_delta": parity,
        "peak_memory_bytes": memory,
        "sparse": {
            "benchmark": sparse_graph.name,
            "entities": sparse_graph.num_entities,
            "train_triples": int(sparse_graph.train.shape[0]),
            "curve": sparse_curve,
            "max_param_delta": sparse_parity,
        },
    }
    return table + "\n" + sparse_table + "\n" + note, data


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: fewer epochs, single repeat (still checks parity)",
    )
    args = parser.parse_args(argv)

    text, data = build_report(quick=args.quick)
    publish("training_throughput", text)
    to_json_file(data, RESULTS_DIR / "training_throughput.json")

    worst_speedup = min(row["speedup"] for row in data["throughput"])
    worst_sparse_speedup = min(row["sparse_speedup"] for row in data["sparse"]["curve"])
    write_bench_summary(
        "training",
        config={
            "quick": args.quick,
            "benchmark": data["benchmark"],
            "entities": data["entities"],
            "sparse_benchmark": data["sparse"]["benchmark"],
            "sparse_entities": data["sparse"]["entities"],
            "dimensions": [row["dimension"] for row in data["sparse"]["curve"]],
        },
        metrics={
            "batched_speedup_min": worst_speedup,
            "sparse_speedup_min": worst_sparse_speedup,
            "sparse_triples_per_s": {
                str(row["dimension"]): row["sparse_triples_per_s"]
                for row in data["sparse"]["curve"]
            },
            "batched_triples_per_s": {
                str(row["dimension"]): row["batched_triples_per_s"]
                for row in data["sparse"]["curve"]
            },
            "max_param_delta": data["max_param_delta"],
            "sparse_max_param_delta": data["sparse"]["max_param_delta"],
            "peak_memory_bytes": data["peak_memory_bytes"],
        },
    )

    if data["max_param_delta"] > 1e-10:
        print(f"FAIL: engine parity violated ({data['max_param_delta']:.2e} > 1e-10)")
        return 1
    if data["sparse"]["max_param_delta"] > 1e-10:
        print(
            "FAIL: sparse parity violated "
            f"({data['sparse']['max_param_delta']:.2e} > 1e-10)"
        )
        return 1
    # Acceptance: the batched engine is at least 2x the reference loop on the
    # largest miniature graph (quick mode tolerates CI-runner noise at 1.5x).
    floor = 1.5 if args.quick else 2.0
    if worst_speedup < floor:
        print(f"FAIL: batched speedup {worst_speedup:.2f}x below the {floor}x floor")
        return 1
    # Acceptance: at large vocab / small batch the sparse engine beats the
    # batched engine by at least 1.5x (2x in full mode) at every dimension.
    if worst_sparse_speedup < floor:
        print(
            f"FAIL: sparse speedup {worst_sparse_speedup:.2f}x below the {floor}x floor"
        )
        return 1
    print(
        f"OK: batched {worst_speedup:.2f}x+ over reference, "
        f"sparse {worst_sparse_speedup:.2f}x+ over batched, parity within 1e-10"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
