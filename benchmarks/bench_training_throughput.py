"""Training-throughput benchmark: batched engine vs the reference loop.

Measures the per-candidate training hot path (Alg. 1) that dominates every
greedy-search run, on the largest built-in miniature benchmark:

* **throughput**: wall-clock of ``Trainer.fit`` under the reference engine
  vs the batched engine (unchunked and entity-chunked), for a 2-block
  classical structure and a 6-block search-space structure, including the
  speedup factors;
* **parity**: the engines must agree on final parameters to ``atol=1e-10``
  (measured, not assumed — the run fails otherwise);
* **peak memory**: ``tracemalloc`` peak of one training run with and without
  ``score_chunk_size``, demonstrating that chunked scoring bounds the
  transient score matrices.

Runs standalone (CI calls it with ``--quick`` and uploads the JSON timings
as an artifact)::

    PYTHONPATH=src python benchmarks/bench_training_throughput.py --quick

Results are printed as a table and written to
``benchmarks/results/training_throughput.json`` so regressions are visible
per revision.
"""

from __future__ import annotations

import argparse
import time
import tracemalloc

import numpy as np

from _helpers import bench_training_config, publish, RESULTS_DIR

from repro.analysis import format_table
from repro.datasets import load_benchmark
from repro.kge.scoring.bilinear import BlockScoringFunction
from repro.kge.scoring.blocks import BlockStructure, classical_structure
from repro.kge.trainer import Trainer
from repro.utils.serialization import to_json_file

#: The largest built-in miniature benchmark.
LARGEST_BENCHMARK = "yago310"

#: A representative 6-block structure (the search trains mostly 4-6 block SFs).
SIX_BLOCK_STRUCTURE = BlockStructure(
    [(0, 0, 0, 1), (1, 1, 1, 1), (2, 3, 2, 1), (3, 2, 2, -1), (0, 1, 3, 1), (1, 0, 3, -1)],
    name="six-blocks",
)

#: Entity-chunk size used for the chunked measurements.
CHUNK_SIZE = 128


def _fit(graph, structure, config, engine: str, chunk: int = 0):
    run_config = config.replace(train_engine=engine, score_chunk_size=chunk)
    scoring_function = BlockScoringFunction(structure)
    trainer = Trainer(scoring_function, run_config)
    return trainer.fit(graph)


def _time_fit(graph, structure, config, engine: str, chunk: int = 0, repeats: int = 3) -> float:
    """Best-of-N wall-clock seconds (best-of to suppress scheduler noise)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        _fit(graph, structure, config, engine, chunk)
        best = min(best, time.perf_counter() - start)
    return best


def measure_throughput(graph, config, repeats: int) -> list:
    rows = []
    for label, structure in (
        ("simple (2 blocks)", classical_structure("simple")),
        ("six-blocks (6 blocks)", SIX_BLOCK_STRUCTURE),
    ):
        reference = _time_fit(graph, structure, config, "reference", repeats=repeats)
        batched = _time_fit(graph, structure, config, "batched", repeats=repeats)
        chunked = _time_fit(
            graph, structure, config, "batched", chunk=CHUNK_SIZE, repeats=repeats
        )
        rows.append(
            {
                "structure": label,
                "reference_s": reference,
                "batched_s": batched,
                f"chunked_{CHUNK_SIZE}_s": chunked,
                "speedup": reference / batched,
                "chunked_speedup": reference / chunked,
            }
        )
    return rows


def check_parity(graph, config) -> float:
    """Max |param difference| between engines (must stay within 1e-10)."""
    reference_params, _ = _fit(graph, SIX_BLOCK_STRUCTURE, config, "reference")
    batched_params, _ = _fit(graph, SIX_BLOCK_STRUCTURE, config, "batched")
    chunked_params, _ = _fit(graph, SIX_BLOCK_STRUCTURE, config, "batched", chunk=CHUNK_SIZE)
    worst = 0.0
    for key in reference_params:
        worst = max(worst, float(np.abs(batched_params[key] - reference_params[key]).max()))
        worst = max(worst, float(np.abs(chunked_params[key] - reference_params[key]).max()))
    return worst


def measure_peak_memory(graph, config) -> dict:
    """tracemalloc peaks of one epoch, unchunked vs chunked scoring."""
    memory_config = config.replace(epochs=1)
    peaks = {}
    for label, chunk in (("unchunked", 0), (f"chunk_{CHUNK_SIZE}", CHUNK_SIZE)):
        tracemalloc.start()
        _fit(graph, SIX_BLOCK_STRUCTURE, memory_config, "batched", chunk)
        _current, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        peaks[label] = peak
    return peaks


def build_report(quick: bool) -> tuple:
    graph = load_benchmark(LARGEST_BENCHMARK, scale=1.0)
    config = bench_training_config(epochs=3 if quick else 8)
    repeats = 1 if quick else 3

    throughput = measure_throughput(graph, config, repeats)
    parity = check_parity(graph, config.replace(epochs=2 if quick else 4))
    memory = measure_peak_memory(graph, config)

    table = format_table(
        throughput,
        title=f"Training throughput on {graph.name} "
        f"(E={graph.num_entities}, {graph.train.shape[0]} train triples)",
    )
    note = (
        f"max |param delta| across engines: {parity:.2e} (bound: 1e-10)\n"
        f"peak traced memory: unchunked {memory['unchunked'] / 1e6:.1f} MB, "
        f"chunk={CHUNK_SIZE} {memory[f'chunk_{CHUNK_SIZE}'] / 1e6:.1f} MB"
    )
    data = {
        "benchmark": graph.name,
        "entities": graph.num_entities,
        "quick": quick,
        "throughput": throughput,
        "max_param_delta": parity,
        "peak_memory_bytes": memory,
    }
    return table + "\n" + note, data


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: fewer epochs, single repeat (still checks parity)",
    )
    args = parser.parse_args(argv)

    text, data = build_report(quick=args.quick)
    publish("training_throughput", text)
    to_json_file(data, RESULTS_DIR / "training_throughput.json")

    if data["max_param_delta"] > 1e-10:
        print(f"FAIL: engine parity violated ({data['max_param_delta']:.2e} > 1e-10)")
        return 1
    # Acceptance: the batched engine is at least 2x the reference loop on the
    # largest miniature graph (quick mode tolerates CI-runner noise at 1.5x).
    floor = 1.5 if args.quick else 2.0
    worst_speedup = min(row["speedup"] for row in data["throughput"])
    if worst_speedup < floor:
        print(f"FAIL: batched speedup {worst_speedup:.2f}x below the {floor}x floor")
        return 1
    print(f"OK: batched engine {worst_speedup:.2f}x+ over reference, parity within 1e-10")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
