"""Table VI — triplet classification accuracy.

The paper evaluates triplet classification on FB15k, WN18RR and FB15k-237.
The bench trains the bilinear baselines plus the AutoSF-searched structure on
each of those miniature benchmarks and reports accuracy with relation-specific
thresholds tuned on the validation split; every model is evaluated on the
same generated negative sets so the comparison is paired.
"""

from __future__ import annotations

from _helpers import BENCH_SCALE, bench_search_config, bench_training_config, publish

from repro.analysis import format_table
from repro.core import AutoSFSearch
from repro.datasets import load_benchmark
from repro.kge import train_model
from repro.kge.evaluation import evaluate_triplet_classification, generate_classification_negatives

#: Paper-reported accuracies (percent) from Table VI.
PAPER_ACCURACY = {
    "fb15k": {"distmult": 80.8, "analogy": 82.1, "complex": 81.8, "simple": 81.5, "autosf": 82.7},
    "wn18rr": {"distmult": 84.6, "analogy": 86.1, "complex": 86.6, "simple": 85.7, "autosf": 87.7},
    "fb15k237": {"distmult": 79.8, "analogy": 79.7, "complex": 79.6, "simple": 79.6, "autosf": 81.2},
}

DATASETS = ("fb15k", "wn18rr", "fb15k237")
BASELINES = ("distmult", "analogy", "complex", "simple")
SEARCH_BUDGET = 9


def build_table() -> str:
    training_config = bench_training_config()
    rows = []
    for benchmark_name in DATASETS:
        graph = load_benchmark(benchmark_name, scale=BENCH_SCALE)
        negatives = (
            generate_classification_negatives(graph, "valid", rng=1),
            generate_classification_negatives(graph, "test", rng=2),
        )

        def accuracy_of(model) -> float:
            return 100.0 * evaluate_triplet_classification(
                model.scoring_function, model.params, graph, negatives=negatives
            )

        for model_name in BASELINES:
            model = train_model(graph, model_name, training_config)
            rows.append(
                {
                    "dataset": benchmark_name,
                    "model": model_name,
                    "accuracy_%": accuracy_of(model),
                    "accuracy_paper_%": PAPER_ACCURACY[benchmark_name][model_name],
                }
            )
        search = AutoSFSearch(graph, training_config, bench_search_config())
        result = search.run(max_evaluations=SEARCH_BUDGET)
        model = train_model(graph, result.best_structure, training_config)
        rows.append(
            {
                "dataset": benchmark_name,
                "model": "autosf",
                "accuracy_%": accuracy_of(model),
                "accuracy_paper_%": PAPER_ACCURACY[benchmark_name]["autosf"],
            }
        )
    return format_table(rows, title="Table VI: triplet classification accuracy", precision=1)


def test_table6_triplet_classification(benchmark):
    table = benchmark.pedantic(build_table, rounds=1, iterations=1)
    publish("table6_triplet_classification", table)
    assert "autosf" in table
