"""Figure 6 — AutoSF vs. other AutoML search strategies.

On WN18RR and FB15k-237 the paper compares the any-time best validation MRR
of AutoSF against random search, Bayesian optimization and a general
approximator (an unconstrained MLP scoring function).  The qualitative
expectations: the MLP is clearly worse than anything in the bilinear space,
and AutoSF reaches a given MRR with fewer trained models than random/Bayes.
Every searcher shares a per-dataset candidate evaluator, so equivalent
structures are never trained twice and the budgets are directly comparable.
"""

from __future__ import annotations

from _helpers import BENCH_SCALE, bench_search_config, bench_training_config, publish

from repro.analysis import format_series
from repro.core import AutoSFSearch, BayesSearch, CandidateEvaluator, RandomSearch
from repro.core.baselines import general_approximator_baseline
from repro.datasets import load_benchmark

DATASETS = ("wn18rr", "fb15k237")
BUDGET = 10


def build_report() -> str:
    training_config = bench_training_config()
    sections = []
    for benchmark_name in DATASETS:
        graph = load_benchmark(benchmark_name, scale=BENCH_SCALE)
        autosf = AutoSFSearch(
            graph,
            training_config,
            bench_search_config(),
            evaluator=CandidateEvaluator(graph, training_config),
        ).run(max_evaluations=BUDGET)
        random_search = RandomSearch(graph, training_config, num_blocks=6, seed=0).run(
            max_evaluations=BUDGET
        )
        bayes_search = BayesSearch(graph, training_config, num_blocks=6, pool_size=24, seed=0).run(
            max_evaluations=BUDGET
        )
        mlp_mrr = general_approximator_baseline(graph, training_config)
        curves = {
            "autosf": autosf.anytime_curve(),
            "random": random_search.anytime_curve(),
            "bayes": bayes_search.anytime_curve(),
            "gen_approx_mlp": [mlp_mrr] * BUDGET,
        }
        sections.append(
            format_series(
                curves,
                title=f"Fig. 6 ({benchmark_name}): any-time best validation MRR vs. #models trained",
                index_label="model#",
            )
        )
    return "\n\n".join(sections)


def test_fig6_automl_comparison(benchmark):
    report = benchmark.pedantic(build_report, rounds=1, iterations=1)
    publish("fig6_automl_comparison", report)
    assert "gen_approx_mlp" in report
