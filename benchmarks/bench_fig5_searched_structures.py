"""Figure 5 — the searched scoring functions, rendered per dataset.

The paper plots the block matrix g(r) of the best structure found on each
benchmark and argues (i) the structures differ across datasets, (ii) they are
not equivalent to each other under the invariance group, and (iii) their SRF
profile matches the dataset's relation-pattern mix (e.g. the FB15k-237
winner, like DistMult, need not be skew-symmetric).  The bench reruns the
scaled-down search per miniature and prints exactly that case study.
"""

from __future__ import annotations

from itertools import combinations

from _helpers import BENCH_SCALE, bench_search_config, bench_training_config, publish

from repro.analysis import CaseStudy
from repro.core import AutoSFSearch, are_equivalent
from repro.datasets import available_benchmarks, dataset_statistics, load_benchmark

SEARCH_BUDGET = 9


def build_report() -> str:
    training_config = bench_training_config()
    studies = {}
    sections = []
    for benchmark_name in available_benchmarks():
        graph = load_benchmark(benchmark_name, scale=BENCH_SCALE)
        search = AutoSFSearch(graph, training_config, bench_search_config())
        result = search.run(max_evaluations=SEARCH_BUDGET)
        study = CaseStudy(
            benchmark_name, result.best_structure, result.best_mrr, dataset_statistics(graph)
        )
        studies[benchmark_name] = study
        sections.append(study.report())

    distinct_pairs = [
        f"{a} vs {b}: {'distinct' if not are_equivalent(studies[a].structure, studies[b].structure) else 'equivalent'}"
        for a, b in combinations(studies, 2)
    ]
    novelty = [f"{name}: {'novel' if study.is_novel() else 'rediscovered classical model'}"
               for name, study in studies.items()]
    footer = "pairwise distinctiveness:\n  " + "\n  ".join(distinct_pairs)
    footer += "\nnovelty:\n  " + "\n  ".join(novelty)
    return "\n\n".join(sections) + "\n\n" + footer


def test_fig5_searched_structures(benchmark):
    report = benchmark.pedantic(build_report, rounds=1, iterations=1)
    publish("fig5_searched_structures", report)
    assert "searched scoring function" in report
