"""Search-strategy benchmark: greedy vs random vs Bayes through one loop.

All three policies of the paper's Sec. V comparison run through the unified
:class:`repro.experiments.loop.SearchLoop` on the yago310 miniature, under
one shared evaluation protocol and one budget — selected purely by the
spec's ``search.strategy`` field, exactly as ``repro-autosf run`` does.
Reported per strategy:

* **quality**: best validation MRR and the any-time best curve (Fig. 6);
* **cost**: total wall-clock, models actually trained, and the filter /
  dedup counters;
* **cache leverage**: a second pass of every strategy against the warm
  evaluation store must train **zero** new models (the regression the
  baselines used to fail by bypassing the store) — measured, not assumed.

Two further checks are asserted (not just reported):

* **distributed parity**: the greedy search through a 3-worker
  :class:`~repro.core.distributed.QueueBackend` — with one worker killed
  mid-batch via the fault-injection hook — must reproduce the serial
  trajectory bit for bit;
* **ASHA speed-up**: the fidelity scheduler screening a wide candidate
  front must reach the same-or-better best MRR as training the whole
  front at full fidelity, at >= 3x less total training compute (epochs).

Runs standalone (CI calls it with ``--quick`` and uploads the JSON timings
as an artifact)::

    PYTHONPATH=src python benchmarks/bench_search_strategies.py --quick

Results are printed as tables and written to
``benchmarks/results/search_strategies.json`` so regressions are visible per
revision.
"""

from __future__ import annotations

import argparse
import tempfile
import time

from _helpers import (
    BENCH_EPOCHS,
    BENCH_SCALE,
    RESULTS_DIR,
    bench_training_config,
    publish,
    write_bench_summary,
)

from repro.analysis import format_series, format_table
from repro.core.distributed import QueueBackend
from repro.core.store import EvaluationStore
from repro.datasets import load_benchmark
from repro.experiments import (
    DatasetSpec,
    ExperimentSpec,
    FidelityScheduler,
    SearchLoop,
    SearchSpec,
    create_strategy,
)
from repro.utils.config import PredictorConfig
from repro.utils.serialization import to_json_file

BENCHMARK = "yago310"
STRATEGIES = ("greedy", "random", "bayes")


def build_spec(strategy: str, budget: int, scale: float) -> ExperimentSpec:
    return ExperimentSpec(
        name=f"bench-{strategy}",
        seed=0,
        dataset=DatasetSpec(benchmark=BENCHMARK, scale=scale, seed=0),
        search=SearchSpec(
            strategy=strategy,
            budget=budget,
            max_blocks=6,
            candidates_per_step=12,
            top_parents=4,
            train_per_step=3,
            num_blocks=6,
            pool_size=16,
        ),
        predictor=PredictorConfig(epochs=100),
    )


def run_strategy(graph, spec, training_config, store) -> dict:
    loop = SearchLoop(
        graph,
        create_strategy(spec),
        training_config,
        seed=spec.seed,
        store=store,
    )
    start = time.perf_counter()
    result = loop.run(max_evaluations=spec.search.budget)
    elapsed = time.perf_counter() - start
    return {
        "strategy": spec.search.strategy,
        "best_mrr": result.best_mrr,
        "anytime_curve": result.anytime_curve(),
        "num_evaluations": result.num_evaluations,
        "num_trained": loop.evaluator.num_trained,
        "wall_seconds": elapsed,
        "filter_statistics": result.filter_statistics,
    }


def distributed_parity(graph, training_config, budget, scale) -> dict:
    """Greedy search on the queue backend (one worker killed) vs serial.

    The parity oracle of the distributed backend: per-candidate seeding
    plus index-slotted results mean the trajectory must be bit-identical
    no matter how many workers run or die.
    """
    spec = build_spec("greedy", budget, scale)
    start = time.perf_counter()
    serial_result = SearchLoop(
        graph, create_strategy(spec), training_config, seed=spec.seed
    ).run(max_evaluations=budget)
    serial_seconds = time.perf_counter() - start

    backend = QueueBackend(
        num_workers=3,
        heartbeat_interval=0.2,
        heartbeat_timeout=5.0,
        _kill_after_tasks={0: 1},  # worker 0 dies holding its second task
    )
    start = time.perf_counter()
    queue_result = SearchLoop(
        graph, create_strategy(spec), training_config, seed=spec.seed, backend=backend
    ).run(max_evaluations=budget)
    queue_seconds = time.perf_counter() - start

    serial_curve = [r.validation_mrr for r in serial_result.records]
    queue_curve = [r.validation_mrr for r in queue_result.records]
    assert queue_curve == serial_curve, (
        "queue backend diverged from the serial trajectory "
        "(bit-parity under worker kill is broken)"
    )
    assert queue_result.best_mrr == serial_result.best_mrr
    return {
        "workers": 3,
        "injected_worker_kill": True,
        "budget": budget,
        "best_mrr": queue_result.best_mrr,
        "bit_identical_to_serial": True,
        "serial_wall_seconds": serial_seconds,
        "queue_wall_seconds": queue_seconds,
    }


def asha_speedup(graph, quick: bool, scale: float) -> dict:
    """Full-fidelity wide front vs the same front under the ASHA scheduler.

    Both runs propose identical candidate fronts (same strategy, same
    seed); the baseline trains every candidate at the full epoch budget,
    the scheduled run screens rungs first.  Asserts the scheduled run's
    best MRR is same-or-better at >= 3x less training compute.
    """
    epochs = 15 if quick else 24
    budget = 20  # covers the whole proposed front (5 seeds + 15 extensions)
    spec = ExperimentSpec(
        name="bench-asha",
        seed=0,
        dataset=DatasetSpec(benchmark=BENCHMARK, scale=scale, seed=0),
        search=SearchSpec(
            strategy="greedy",
            budget=budget,
            max_blocks=6,
            candidates_per_step=24,
            top_parents=4,
            train_per_step=15,
        ),
        predictor=PredictorConfig(epochs=100),
    )
    training_config = bench_training_config(epochs=epochs)

    start = time.perf_counter()
    base_loop = SearchLoop(graph, create_strategy(spec), training_config, seed=spec.seed)
    base = base_loop.run(max_evaluations=budget)
    base_seconds = time.perf_counter() - start

    start = time.perf_counter()
    asha_loop = SearchLoop(
        graph,
        create_strategy(spec),
        training_config,
        seed=spec.seed,
        scheduler=FidelityScheduler(reduction=3, min_epochs=1),
    )
    asha = asha_loop.run(max_evaluations=budget)
    asha_seconds = time.perf_counter() - start

    base_compute = base_loop.total_training_epochs
    asha_compute = asha_loop.total_training_epochs
    assert asha.best_mrr >= base.best_mrr, (
        f"ASHA best MRR {asha.best_mrr:.4f} fell below the full-fidelity "
        f"baseline {base.best_mrr:.4f}"
    )
    assert base_compute >= 3 * asha_compute, (
        f"ASHA used {asha_compute} training epochs vs {base_compute} "
        f"full-fidelity (less than the required 3x saving)"
    )
    return {
        "epochs": epochs,
        "budget": budget,
        "ladder": FidelityScheduler(reduction=3, min_epochs=1).ladder(epochs),
        "base_best_mrr": base.best_mrr,
        "asha_best_mrr": asha.best_mrr,
        "base_training_epochs": base_compute,
        "asha_training_epochs": asha_compute,
        "compute_ratio": base_compute / asha_compute,
        "asha_full_fidelity_evaluations": asha.num_evaluations,
        "base_wall_seconds": base_seconds,
        "asha_wall_seconds": asha_seconds,
        "rung_stats": [asha_loop.rung_stats[e] for e in sorted(asha_loop.rung_stats)],
    }


def build_report(quick: bool) -> tuple:
    scale = 0.2 if quick else BENCH_SCALE
    budget = 6 if quick else 12
    graph = load_benchmark(BENCHMARK, scale=scale, seed=0)
    training_config = bench_training_config(epochs=3 if quick else BENCH_EPOCHS)

    rows, curves, payload = [], {}, {"quick": quick, "budget": budget, "strategies": {}}
    with tempfile.TemporaryDirectory() as cache_root:
        for strategy in STRATEGIES:
            spec = build_spec(strategy, budget, scale)
            store = EvaluationStore(f"{cache_root}/{strategy}")
            cold = run_strategy(graph, spec, training_config, store)
            warm = run_strategy(
                graph, spec, training_config, EvaluationStore(f"{cache_root}/{strategy}")
            )
            assert warm["num_trained"] == 0, (
                f"{strategy}: warm store re-trained {warm['num_trained']} candidates "
                f"(the shared-cache regression is back)"
            )
            assert warm["anytime_curve"] == cold["anytime_curve"], (
                f"{strategy}: warm replay diverged from the cold trajectory"
            )
            cold["warm_wall_seconds"] = warm["wall_seconds"]
            rows.append(
                {
                    "strategy": strategy,
                    "best_mrr": cold["best_mrr"],
                    "evaluations": cold["num_evaluations"],
                    "trained": cold["num_trained"],
                    "cold_s": cold["wall_seconds"],
                    "warm_s": warm["wall_seconds"],
                }
            )
            curves[strategy] = cold["anytime_curve"]
            payload["strategies"][strategy] = cold

    distributed = distributed_parity(graph, training_config, budget, scale)
    payload["distributed"] = distributed
    asha = asha_speedup(graph, quick, scale)
    payload["asha"] = asha

    table = format_table(
        rows,
        title=f"Search strategies on {graph.name} (budget {budget}, shared protocol; "
        f"warm pass replays the store, 0 retrained)",
    )
    series = format_series(
        curves, title="Any-time best validation MRR vs. #models trained", index_label="model#"
    )
    extras = format_table(
        [
            {
                "check": "queue backend (3 workers, 1 killed)",
                "result": f"bit-identical to serial, best {distributed['best_mrr']:.4f}",
                "wall_s": f"{distributed['queue_wall_seconds']:.1f}",
            },
            {
                "check": f"ASHA ladder {asha['ladder']} vs full fidelity",
                "result": (
                    f"best {asha['asha_best_mrr']:.4f} >= {asha['base_best_mrr']:.4f} "
                    f"at {asha['compute_ratio']:.1f}x less compute "
                    f"({asha['asha_training_epochs']} vs "
                    f"{asha['base_training_epochs']} epochs)"
                ),
                "wall_s": f"{asha['asha_wall_seconds']:.1f}",
            },
        ],
        title="Distributed + ASHA checks (asserted, not just reported)",
    )
    return table + "\n\n" + series + "\n\n" + extras, payload


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI-sized run: smaller graph, shorter training, smaller budget",
    )
    args = parser.parse_args(argv)
    text, data = build_report(quick=args.quick)
    publish("search_strategies", text)
    to_json_file(data, RESULTS_DIR / "search_strategies.json")
    metrics = {
        strategy: {
            "best_mrr": outcome["best_mrr"],
            "cold_wall_seconds": outcome["wall_seconds"],
            "warm_wall_seconds": outcome["warm_wall_seconds"],
        }
        for strategy, outcome in data["strategies"].items()
    }
    metrics["distributed"] = data["distributed"]
    metrics["asha"] = data["asha"]
    write_bench_summary(
        "search",
        config={"quick": args.quick, "budget": data["budget"]},
        metrics=metrics,
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
