"""Search-strategy benchmark: greedy vs random vs Bayes through one loop.

All three policies of the paper's Sec. V comparison run through the unified
:class:`repro.experiments.loop.SearchLoop` on the yago310 miniature, under
one shared evaluation protocol and one budget — selected purely by the
spec's ``search.strategy`` field, exactly as ``repro-autosf run`` does.
Reported per strategy:

* **quality**: best validation MRR and the any-time best curve (Fig. 6);
* **cost**: total wall-clock, models actually trained, and the filter /
  dedup counters;
* **cache leverage**: a second pass of every strategy against the warm
  evaluation store must train **zero** new models (the regression the
  baselines used to fail by bypassing the store) — measured, not assumed.

Runs standalone (CI calls it with ``--quick`` and uploads the JSON timings
as an artifact)::

    PYTHONPATH=src python benchmarks/bench_search_strategies.py --quick

Results are printed as tables and written to
``benchmarks/results/search_strategies.json`` so regressions are visible per
revision.
"""

from __future__ import annotations

import argparse
import tempfile
import time

from _helpers import (
    BENCH_EPOCHS,
    BENCH_SCALE,
    RESULTS_DIR,
    bench_training_config,
    publish,
    write_bench_summary,
)

from repro.analysis import format_series, format_table
from repro.core.store import EvaluationStore
from repro.datasets import load_benchmark
from repro.experiments import (
    DatasetSpec,
    ExperimentSpec,
    SearchLoop,
    SearchSpec,
    create_strategy,
)
from repro.utils.config import PredictorConfig
from repro.utils.serialization import to_json_file

BENCHMARK = "yago310"
STRATEGIES = ("greedy", "random", "bayes")


def build_spec(strategy: str, budget: int, scale: float) -> ExperimentSpec:
    return ExperimentSpec(
        name=f"bench-{strategy}",
        seed=0,
        dataset=DatasetSpec(benchmark=BENCHMARK, scale=scale, seed=0),
        search=SearchSpec(
            strategy=strategy,
            budget=budget,
            max_blocks=6,
            candidates_per_step=12,
            top_parents=4,
            train_per_step=3,
            num_blocks=6,
            pool_size=16,
        ),
        predictor=PredictorConfig(epochs=100),
    )


def run_strategy(graph, spec, training_config, store) -> dict:
    loop = SearchLoop(
        graph,
        create_strategy(spec),
        training_config,
        seed=spec.seed,
        store=store,
    )
    start = time.perf_counter()
    result = loop.run(max_evaluations=spec.search.budget)
    elapsed = time.perf_counter() - start
    return {
        "strategy": spec.search.strategy,
        "best_mrr": result.best_mrr,
        "anytime_curve": result.anytime_curve(),
        "num_evaluations": result.num_evaluations,
        "num_trained": loop.evaluator.num_trained,
        "wall_seconds": elapsed,
        "filter_statistics": result.filter_statistics,
    }


def build_report(quick: bool) -> tuple:
    scale = 0.2 if quick else BENCH_SCALE
    budget = 6 if quick else 12
    graph = load_benchmark(BENCHMARK, scale=scale, seed=0)
    training_config = bench_training_config(epochs=3 if quick else BENCH_EPOCHS)

    rows, curves, payload = [], {}, {"quick": quick, "budget": budget, "strategies": {}}
    with tempfile.TemporaryDirectory() as cache_root:
        for strategy in STRATEGIES:
            spec = build_spec(strategy, budget, scale)
            store = EvaluationStore(f"{cache_root}/{strategy}")
            cold = run_strategy(graph, spec, training_config, store)
            warm = run_strategy(
                graph, spec, training_config, EvaluationStore(f"{cache_root}/{strategy}")
            )
            assert warm["num_trained"] == 0, (
                f"{strategy}: warm store re-trained {warm['num_trained']} candidates "
                f"(the shared-cache regression is back)"
            )
            assert warm["anytime_curve"] == cold["anytime_curve"], (
                f"{strategy}: warm replay diverged from the cold trajectory"
            )
            cold["warm_wall_seconds"] = warm["wall_seconds"]
            rows.append(
                {
                    "strategy": strategy,
                    "best_mrr": cold["best_mrr"],
                    "evaluations": cold["num_evaluations"],
                    "trained": cold["num_trained"],
                    "cold_s": cold["wall_seconds"],
                    "warm_s": warm["wall_seconds"],
                }
            )
            curves[strategy] = cold["anytime_curve"]
            payload["strategies"][strategy] = cold

    table = format_table(
        rows,
        title=f"Search strategies on {graph.name} (budget {budget}, shared protocol; "
        f"warm pass replays the store, 0 retrained)",
    )
    series = format_series(
        curves, title="Any-time best validation MRR vs. #models trained", index_label="model#"
    )
    return table + "\n\n" + series, payload


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI-sized run: smaller graph, shorter training, smaller budget",
    )
    args = parser.parse_args(argv)
    text, data = build_report(quick=args.quick)
    publish("search_strategies", text)
    to_json_file(data, RESULTS_DIR / "search_strategies.json")
    write_bench_summary(
        "search",
        config={"quick": args.quick, "budget": data["budget"]},
        metrics={
            strategy: {
                "best_mrr": outcome["best_mrr"],
                "cold_wall_seconds": outcome["wall_seconds"],
                "warm_wall_seconds": outcome["warm_wall_seconds"],
            }
            for strategy, outcome in data["strategies"].items()
        },
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
