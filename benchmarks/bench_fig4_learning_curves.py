"""Figure 4 — learning curves: training time vs. test MRR.

The paper plots wall-clock training time against test MRR for the searched
scoring function and the four bilinear baselines on every dataset, showing
that the searched SF both converges faster and reaches a higher plateau.
The bench reproduces the curves on two representative miniatures (WN18RR and
FB15k-237) by evaluating every model periodically during training.
"""

from __future__ import annotations

from _helpers import BENCH_SCALE, bench_search_config, bench_training_config, publish

from repro.analysis import format_series
from repro.core import AutoSFSearch
from repro.datasets import load_benchmark
from repro.kge import KGEModel
from repro.kge.scoring import BlockScoringFunction, get_scoring_function

DATASETS = ("wn18rr", "fb15k237")
BASELINES = ("distmult", "complex", "analogy", "simple")
SEARCH_BUDGET = 7
EVAL_EVERY = 3


def training_curve(graph, scoring_function, training_config):
    """Validation-MRR-vs-epoch curve for one model."""
    config = training_config.replace(eval_every=EVAL_EVERY)
    model = KGEModel(scoring_function, config)
    history = model.fit(graph, validate=True)
    return [value for value in history.validation_mrr if value is not None]


def build_report() -> str:
    training_config = bench_training_config()
    sections = []
    for benchmark_name in DATASETS:
        graph = load_benchmark(benchmark_name, scale=BENCH_SCALE)
        curves = {}
        for model_name in BASELINES:
            curves[model_name] = training_curve(graph, get_scoring_function(model_name), training_config)
        search = AutoSFSearch(graph, training_config, bench_search_config())
        result = search.run(max_evaluations=SEARCH_BUDGET)
        curves["autosf"] = training_curve(
            graph, BlockScoringFunction(result.best_structure), training_config
        )
        sections.append(
            format_series(
                curves,
                title=f"Fig. 4 ({benchmark_name}): validation MRR every {EVAL_EVERY} epochs",
                index_label="eval",
            )
        )
    return "\n\n".join(sections)


def test_fig4_learning_curves(benchmark):
    report = benchmark.pedantic(build_report, rounds=1, iterations=1)
    publish("fig4_learning_curves", report)
    assert "autosf" in report
