"""Pytest configuration for the benchmark harness (see _helpers.py)."""
