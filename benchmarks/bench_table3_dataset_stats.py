"""Table III — dataset statistics (miniatures vs. the paper's benchmarks).

For every benchmark profile the bench generates the miniature graph, runs the
relation-pattern classifier and prints the measured counts next to the
paper-reported ones.  The absolute sizes differ by design (the miniatures are
two to three orders of magnitude smaller); the quantity that must match is
the *mix* of relation patterns, which is what makes the best scoring
function KG-dependent.
"""

from __future__ import annotations

from _helpers import BENCH_SCALE, publish

from repro.analysis import format_table
from repro.datasets import available_benchmarks, dataset_statistics, load_benchmark
from repro.datasets.registry import PAPER_TABLE3


def build_table() -> str:
    rows = []
    for benchmark in available_benchmarks():
        graph = load_benchmark(benchmark, scale=max(BENCH_SCALE, 0.3))
        statistics = dataset_statistics(graph)
        paper = PAPER_TABLE3[benchmark]
        row = {"dataset": benchmark}
        for key in ("entities", "relations", "train", "symmetric", "anti_symmetric", "inverse", "general"):
            row[key] = statistics.as_row()[key]
            row[f"{key}_paper"] = paper[key]
        rows.append(row)
    return format_table(rows, title="Table III: dataset statistics (measured vs. paper)")


def test_table3_dataset_statistics(benchmark):
    table = benchmark.pedantic(build_table, rounds=1, iterations=1)
    publish("table3_dataset_stats", table)
    assert "wn18" in table
