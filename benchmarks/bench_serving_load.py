"""Serving-fleet load benchmark: QPS scaling, tail latency, shared memory.

Drives tens of thousands of mixed head/tail queries (Zipfian relation skew,
the hot-relation regime the engine's admission-gated operator cache is built
for) against the pre-forked serving fleet and reports:

* **QPS scaling vs worker count**: aggregate queries/sec at 1 and 4 workers
  (plus 2 in full mode) over the same memmap-shared artifact.  The floor is
  >=2x at 4 workers on machines with >=4 cores; on smaller machines the
  floor degrades honestly (a fork cannot outrun the core count) and the
  note says so;
* **tail latency**: per-request p50/p99 across concurrent closed-loop
  clients (fresh connection per request, so the kernel accept queue
  load-balances the fleet);
* **parity**: fleet answers over HTTP must be *bit-identical* — entity order
  and float64 scores — to the single-process in-memory oracle engine
  (canonical tie-breaking included; JSON round-trips float64 exactly);
* **shared memory**: per-worker *private* RSS increment over the pre-fork
  parent baseline must stay a small fraction of the artifact's embedding
  bytes — the embeddings are file-backed memmap pages shared through the
  OS page cache, not N copy-on-write duplicates;
* **instrumentation overhead**: the same in-process query stream timed with
  the telemetry registry enabled (``MetricsRegistry``) vs disabled
  (``NullRegistry``), alternating repeats, best-of-N — enabled must stay
  within ``OVERHEAD_CEILING`` (5%) of disabled.

Runs standalone (CI calls it with ``--quick`` and uploads
``BENCH_serving.json``)::

    PYTHONPATH=src python benchmarks/bench_serving_load.py --quick
"""

from __future__ import annotations

import argparse
import json
import os
import queue
import signal
import sys
import tempfile
import threading
import time
from http.client import HTTPConnection
from pathlib import Path

import numpy as np

from _helpers import RESULTS_DIR, publish, write_bench_summary

from repro.analysis import format_table
from repro.kge.model import KGEModel
from repro.kge.scoring import get_scoring_function
from repro.serving import (
    InferenceEngine,
    ServingFleet,
    export_artifact,
    load_artifact,
    wait_until_healthy,
)
from repro.obs.metrics import MetricsRegistry, NullRegistry
from repro.serving.service import process_memory_info
from repro.utils.config import TrainingConfig
from repro.utils.serialization import to_json_file

HOST = "127.0.0.1"

#: Zipf exponent for the relation popularity skew.
ZIPF_EXPONENT = 1.1

#: Worker private-RSS increment must stay under this fraction of the
#: artifact's embedding bytes (memmap sharing, not copy-on-write copies).
PRIVATE_RSS_FRACTION_FLOOR = 0.5

#: Bit-parity sample size (queries re-sent through HTTP and compared).
PARITY_QUERIES = 2000

#: Enabled-instrumentation engine time must stay within this factor of the
#: disabled (NullRegistry) time — the telemetry layer's "costs ~nothing"
#: contract, measured in-process so HTTP noise cannot mask a regression.
OVERHEAD_CEILING = 1.05

#: Alternating enabled/disabled timing repeats; best-of-N per side cancels
#: thermal and allocator drift.
OVERHEAD_REPEATS = 3

#: Pin glibc's mmap threshold so multi-MB scoring slabs are mmap'd and
#: returned to the OS on free.  Left to its dynamic default, the threshold
#: adapts upward and the per-thread malloc arenas retain ~400 MB of freed
#: slabs — pure allocator noise that would swamp the shared-memory
#: accounting this bench exists to check.  glibc only reads the variable at
#: process start, so the bench re-execs itself once; forked fleet workers
#: inherit it.  (The README deployment guide recommends the same setting
#: for production fleets with stable RSS requirements.)
MALLOC_MMAP_THRESHOLD = "131072"


def pin_malloc_threshold() -> None:
    if sys.platform != "linux" or os.environ.get("MALLOC_MMAP_THRESHOLD_"):
        return
    os.environ["MALLOC_MMAP_THRESHOLD_"] = MALLOC_MMAP_THRESHOLD
    os.execv(sys.executable, [sys.executable, os.path.abspath(__file__)] + sys.argv[1:])


def scaling_floor() -> float:
    """Required QPS ratio at 4 workers vs 1, scaled to the core count.

    Four CPU-bound workers cannot beat one worker on a single core; CI and
    any >=4-core machine get the real >=2x assertion from the issue.
    """
    cores = os.cpu_count() or 1
    if cores >= 4:
        return 2.0
    if cores >= 2:
        return 1.2
    return 0.5


# ----------------------------------------------------------------------
# Synthetic artifact + workload
# ----------------------------------------------------------------------
def make_artifact(directory: Path, entities: int, relations: int, dim: int, seed: int = 0):
    """Export a deterministic synthetic ComplEx artifact; returns (path, bytes).

    Generated, not committed: ~25 MB of embeddings is what makes both the
    per-request compute (GEMM over all entities) and the shared-memory
    accounting meaningful, and a seeded build is bit-reproducible anyway.
    """
    scoring = get_scoring_function("complex")
    params = scoring.init_params(entities, relations, dim, rng=seed)
    model = KGEModel(scoring, TrainingConfig(dimension=dim, epochs=1, seed=seed), params=params)
    path = export_artifact(model, directory / "artifact")
    embedding_bytes = sum(array.nbytes for array in params.values())
    return path, embedding_bytes


def build_workload(num_queries: int, entities: int, relations: int, seed: int = 1):
    """Mixed head/tail queries, Zipfian over relations, uniform over entities."""
    rng = np.random.default_rng(seed)
    weights = 1.0 / np.arange(1, relations + 1) ** ZIPF_EXPONENT
    weights /= weights.sum()
    relation_ids = rng.choice(relations, size=num_queries, p=weights)
    entity_ids = rng.integers(0, entities, size=num_queries)
    directions = rng.random(num_queries) < 0.5
    return [
        ("tail" if is_tail else "head", int(entity), int(relation))
        for is_tail, entity, relation in zip(directions, entity_ids, relation_ids)
    ]


def as_request_payload(queries, top_k: int):
    return {
        "queries": [
            {"direction": direction, "entity": entity, "relation": relation, "top_k": top_k}
            for direction, entity, relation in queries
        ]
    }


# ----------------------------------------------------------------------
# Closed-loop load driver
# ----------------------------------------------------------------------
def post_json(port: int, path: str, payload) -> dict:
    """One request on a fresh connection (per-request fleet load balancing)."""
    connection = HTTPConnection(HOST, port, timeout=60.0)
    try:
        body = json.dumps(payload).encode("utf-8")
        connection.request("POST", path, body=body, headers={"Content-Type": "application/json"})
        response = connection.getresponse()
        decoded = json.loads(response.read())
        if response.status != 200:
            raise RuntimeError(f"HTTP {response.status}: {decoded.get('error')}")
        return decoded
    finally:
        connection.close()


def drive_load(port: int, requests, threads: int):
    """Closed-loop clients drain the request queue; returns (wall_s, latencies)."""
    work: "queue.SimpleQueue" = queue.SimpleQueue()
    for payload in requests:
        work.put(payload)
    latencies: list = []
    errors: list = []
    lock = threading.Lock()

    def client() -> None:
        while True:
            try:
                payload = work.get_nowait()
            except queue.Empty:
                return
            started = time.perf_counter()
            try:
                post_json(port, "/query", payload)
            except Exception as error:  # noqa: BLE001 - surfaced after the run
                with lock:
                    errors.append(error)
                return
            with lock:
                latencies.append(time.perf_counter() - started)

    workers = [threading.Thread(target=client) for _ in range(threads)]
    started = time.perf_counter()
    for thread in workers:
        thread.start()
    for thread in workers:
        thread.join()
    wall_s = time.perf_counter() - started
    if errors:
        raise RuntimeError(f"{len(errors)} failed requests; first: {errors[0]}")
    return wall_s, latencies


def pid_private_bytes(pid: int) -> int:
    """Private (resident minus shared) bytes of another process, via /proc."""
    fields = Path(f"/proc/{pid}/statm").read_text(encoding="ascii").split()
    page_size = os.sysconf("SC_PAGE_SIZE")
    return max(0, (int(fields[1]) - int(fields[2])) * page_size)


# ----------------------------------------------------------------------
# One fleet measurement point
# ----------------------------------------------------------------------
def run_fleet_point(
    artifact_dir: Path,
    workers: int,
    requests,
    threads: int,
    num_queries: int,
    window_ms: float,
    parent_private_baseline: int,
):
    fleet = ServingFleet(
        artifact_dir,
        host=HOST,
        port=0,
        workers=workers,
        micro_batch_window_ms=window_ms,
        # Keep the transient score slab (batch x entities float64) small so
        # per-worker private RSS reflects artifact sharing, not scratch space.
        batch_size=32,
    )
    port = fleet.start()
    try:
        wait_until_healthy(HOST, port, timeout_s=30.0)
        # Warmup: fault in memmap pages, admit the hot operators.
        for payload in requests[: max(threads, 2 * workers)]:
            post_json(port, "/query", payload)
        wall_s, latencies = drive_load(port, requests, threads)
        worker_private = [
            pid_private_bytes(pid) - parent_private_baseline
            for pid in fleet.worker_pids
        ]
    finally:
        fleet.terminate(signal.SIGTERM)
        exit_status = fleet.wait()
        fleet.close()
    if exit_status != 0:
        raise RuntimeError(f"fleet worker exited with status {exit_status}")
    ordered = np.sort(latencies)
    return {
        "workers": workers,
        "qps": num_queries / wall_s,
        "p50_ms": float(ordered[int(0.50 * (len(ordered) - 1))]) * 1000.0,
        "p99_ms": float(ordered[int(0.99 * (len(ordered) - 1))]) * 1000.0,
        "requests": len(latencies),
        "max_worker_private_mb": max(worker_private) / 2**20,
    }


def check_http_parity(artifact_dir: Path, workload, top_k: int) -> int:
    """Fleet-over-HTTP answers must be bit-identical to the in-memory oracle.

    Floating-point scores depend on the GEMM group shape, so the oracle must
    see the queries in the same per-request chunks the workers do, and both
    sides run with the result cache off (a cache replays a score computed
    under an *earlier* request's grouping — fine for serving, but it would
    make "bit-identical" depend on which worker saw the duplicate first).
    """
    sample = workload[:PARITY_QUERIES]
    chunk = 200
    oracle = InferenceEngine.from_artifact(
        load_artifact(artifact_dir), result_cache_size=0
    )
    expected = []
    for start in range(0, len(sample), chunk):
        expected.extend(oracle.query_batch(sample[start : start + chunk], top_k=top_k))
    fleet = ServingFleet(
        artifact_dir,
        host=HOST,
        port=0,
        workers=2,
        micro_batch_window_ms=0.0,
        result_cache_size=0,
    )
    port = fleet.start()
    try:
        wait_until_healthy(HOST, port, timeout_s=30.0)
        answers = []
        for start in range(0, len(sample), chunk):
            payload = as_request_payload(sample[start : start + chunk], top_k)
            for response in post_json(port, "/query", payload)["responses"]:
                answers.append([(p["entity"], p["score"]) for p in response["predictions"]])
    finally:
        fleet.terminate(signal.SIGTERM)
        fleet.wait()
        fleet.close()
    for index, (got, reference) in enumerate(zip(answers, expected)):
        if got != [(entity, score) for entity, score in reference]:
            raise AssertionError(
                f"fleet answer for query {index} {sample[index]} diverged from "
                f"the in-memory oracle: {got[:3]}... vs {list(reference)[:3]}..."
            )
    return len(sample)


def measure_instrumentation_overhead(artifact_dir: Path, workload, top_k: int) -> dict:
    """Best-of-N engine time with the metrics registry enabled vs disabled.

    Runs in-process (no HTTP, no fleet) so the measurement isolates exactly
    what the telemetry layer adds per query: two counter increments and one
    histogram observation per engine batch.  Repeats alternate
    disabled/enabled so drift hits both sides equally; best-of-N per side is
    the standard low-noise estimator for a deterministic workload.
    """
    artifact = load_artifact(artifact_dir)
    sample = workload[: min(len(workload), 2000)]
    chunk = 64

    def timed(registry) -> float:
        # Fresh engine per repeat: identical cold caches on both sides, and
        # the registry binds at construction time like in the fleet workers.
        engine = InferenceEngine.from_artifact(
            artifact, result_cache_size=0, registry=registry
        )
        engine.query_batch(sample[:chunk], top_k=top_k)  # warmup
        started = time.perf_counter()
        for start in range(0, len(sample), chunk):
            engine.query_batch(sample[start : start + chunk], top_k=top_k)
        return time.perf_counter() - started

    disabled_times, enabled_times = [], []
    for _ in range(OVERHEAD_REPEATS):
        disabled_times.append(timed(NullRegistry()))
        enabled_times.append(timed(MetricsRegistry()))
    disabled_s = min(disabled_times)
    enabled_s = min(enabled_times)
    return {
        "queries": len(sample),
        "disabled_s": disabled_s,
        "enabled_s": enabled_s,
        "overhead_ratio": enabled_s / disabled_s,
        "overhead_ceiling": OVERHEAD_CEILING,
    }


# ----------------------------------------------------------------------
# Main
# ----------------------------------------------------------------------
def build_report(quick: bool) -> tuple:
    entities = 96_000 if quick else 192_000
    relations = 64
    dim = 64
    num_queries = 8_000 if quick else 24_000
    batch = 32
    threads = 8
    window_ms = 2.0
    worker_counts = [1, 4] if quick else [1, 2, 4]

    workload = build_workload(num_queries, entities, relations)
    requests = [
        as_request_payload(workload[start : start + batch], 10)
        for start in range(0, num_queries, batch)
    ]

    with tempfile.TemporaryDirectory(prefix="bench_serving_") as scratch:
        artifact_dir, embedding_bytes = make_artifact(
            Path(scratch), entities, relations, dim
        )
        parity_checked = check_http_parity(artifact_dir, workload, top_k=10)
        overhead = measure_instrumentation_overhead(artifact_dir, workload, top_k=10)
        parent_private = process_memory_info().get("private_bytes", 0)
        points = [
            run_fleet_point(
                artifact_dir,
                workers,
                requests,
                threads,
                num_queries,
                window_ms,
                parent_private,
            )
            for workers in worker_counts
        ]

    by_workers = {point["workers"]: point for point in points}
    scaling = by_workers[max(worker_counts)]["qps"] / by_workers[1]["qps"]
    private_fraction = max(point["max_worker_private_mb"] for point in points) * 2**20 / embedding_bytes
    table = format_table(
        points,
        title=f"Serving fleet load (E={entities}, R={relations}, d={dim}, "
        f"{num_queries} queries x {batch}/request, {threads} clients, "
        f"{os.cpu_count()} core(s))",
    )
    note = (
        f"QPS x{scaling:.2f} at {max(worker_counts)} workers vs 1; "
        f"{parity_checked} HTTP answers bit-identical to the in-memory oracle; "
        f"worst per-worker private-RSS increment "
        f"{max(p['max_worker_private_mb'] for p in points):.1f} MB "
        f"({100 * private_fraction:.0f}% of {embedding_bytes / 2**20:.1f} MB embeddings); "
        f"instrumentation overhead x{overhead['overhead_ratio']:.3f} "
        f"(ceiling x{OVERHEAD_CEILING})"
    )
    data = {
        "entities": entities,
        "relations": relations,
        "dimension": dim,
        "queries": num_queries,
        "batch_per_request": batch,
        "client_threads": threads,
        "micro_batch_window_ms": window_ms,
        "cores": os.cpu_count(),
        "quick": quick,
        "points": points,
        "scaling": scaling,
        "scaling_workers": max(worker_counts),
        "scaling_floor": scaling_floor(),
        "parity_queries": parity_checked,
        "embedding_mb": embedding_bytes / 2**20,
        "private_rss_fraction": private_fraction,
        "instrumentation_overhead": overhead,
    }
    return table + "\n" + note, data


def main(argv=None) -> int:
    pin_malloc_threshold()
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: smaller artifact and workload (still checks "
        "bit-parity, QPS scaling, and shared-memory accounting)",
    )
    args = parser.parse_args(argv)

    text, data = build_report(quick=args.quick)
    publish("serving_load", text)
    to_json_file(data, RESULTS_DIR / "serving_load.json")
    write_bench_summary(
        "serving",
        config={
            key: data[key]
            for key in (
                "quick", "entities", "relations", "dimension", "queries",
                "batch_per_request", "client_threads", "micro_batch_window_ms", "cores",
            )
        },
        metrics={
            "qps_by_workers": {str(p["workers"]): p["qps"] for p in data["points"]},
            "p50_ms_by_workers": {str(p["workers"]): p["p50_ms"] for p in data["points"]},
            "p99_ms_by_workers": {str(p["workers"]): p["p99_ms"] for p in data["points"]},
            "scaling": data["scaling"],
            "scaling_floor": data["scaling_floor"],
            "parity_queries": data["parity_queries"],
            "embedding_mb": data["embedding_mb"],
            "private_rss_fraction": data["private_rss_fraction"],
            "instrumentation_overhead_ratio": data["instrumentation_overhead"]["overhead_ratio"],
            "instrumentation_overhead_ceiling": OVERHEAD_CEILING,
        },
    )

    floor = data["scaling_floor"]
    if data["scaling"] < floor:
        print(
            f"FAIL: QPS scaling x{data['scaling']:.2f} at "
            f"{data['scaling_workers']} workers below the x{floor} floor "
            f"({data['cores']} core(s))"
        )
        return 1
    if data["private_rss_fraction"] >= PRIVATE_RSS_FRACTION_FLOOR:
        print(
            f"FAIL: per-worker private RSS is "
            f"{100 * data['private_rss_fraction']:.0f}% of the embedding bytes "
            f"(floor {100 * PRIVATE_RSS_FRACTION_FLOOR:.0f}%) — the artifact is "
            f"being copied, not shared"
        )
        return 1
    overhead = data["instrumentation_overhead"]
    if overhead["overhead_ratio"] > OVERHEAD_CEILING:
        print(
            f"FAIL: enabled instrumentation is x{overhead['overhead_ratio']:.3f} "
            f"of the disabled engine time over {overhead['queries']} queries "
            f"(ceiling x{OVERHEAD_CEILING}) — the telemetry layer is no longer "
            f"near-free"
        )
        return 1
    degraded = "" if (os.cpu_count() or 1) >= 4 else (
        f" [floor degraded to x{floor} on {os.cpu_count()} core(s)]"
    )
    print(
        f"OK: x{data['scaling']:.2f} QPS at {data['scaling_workers']} workers{degraded}, "
        f"{data['parity_queries']} answers bit-identical to the oracle, workers share "
        f"the {data['embedding_mb']:.1f} MB embeddings via memmap "
        f"({100 * data['private_rss_fraction']:.0f}% private), instrumentation "
        f"overhead x{overhead['overhead_ratio']:.3f} <= x{OVERHEAD_CEILING}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
