"""Live-ingest benchmark: mutate, fine-tune, and hot-swap while serving.

Exercises the full ``repro.live`` loop against a running serving fleet:

* **sustained ingest-while-serving**: rounds of
  ``TripleStore.apply_delta`` → ``finetune_delta`` (warm-started, sparse,
  delta-touched rows only) → ``export_artifact --generation N`` →
  atomic symlink flip → ``ServingFleet.signal_reload()`` (SIGHUP), while
  closed-loop clients hammer ``POST /query`` the whole time.  Reports
  delta triples/s through the pipeline and the query throughput the fleet
  kept up alongside it;
* **staleness-to-freshness latency**: per round, the wall time from the
  moment the new generation is published (symlink flipped, SIGHUP sent)
  to the first ``/stats`` response served from it.  ``--quick`` asserts
  the worst round stays under ``STALENESS_CEILING_S``;
* **zero dropped requests**: every query sent during the swaps must come
  back HTTP 200 — the atomic engine-mount flip means there is no window
  where a worker answers from a half-built engine or refuses;
* **reload bit-parity**: after the final swap the fleet's HTTP answers
  must be bit-identical — entity order and float64 scores — to a
  cold-started in-memory engine on the final artifact;
* **NullRegistry parity**: the same delta → compact → fine-tune pipeline
  run with telemetry enabled (``MetricsRegistry``) and disabled
  (``NullRegistry``) must produce byte-identical stores and parameters —
  instrumentation observes the live path, it never steers it.

Runs standalone (CI calls it with ``--quick`` and uploads
``BENCH_live.json``)::

    PYTHONPATH=src python benchmarks/bench_live_ingest.py --quick
"""

from __future__ import annotations

import argparse
import json
import os
import tempfile
import threading
import time
from http.client import HTTPConnection
from pathlib import Path

import numpy as np

from _helpers import RESULTS_DIR, publish, write_bench_summary

from repro.analysis import format_table
from repro.datasets import TripleStore, load_benchmark
from repro.kge import train_model
from repro.kge.model import KGEModel
from repro.live import compact_store, finetune_delta
from repro.obs.metrics import MetricsRegistry, NullRegistry, get_registry, set_registry
from repro.serving import (
    InferenceEngine,
    ServingFleet,
    export_artifact,
    load_artifact,
    wait_until_healthy,
)
from repro.utils.config import TrainingConfig
from repro.utils.serialization import to_json_file

HOST = "127.0.0.1"

#: Worst-round staleness-to-freshness latency ceiling asserted in --quick.
#: Generous for CI jitter — the machine-readable signal is the measured
#: value in BENCH_live.json; this catches a broken reload path, not drift.
STALENESS_CEILING_S = 15.0

#: Queries re-sent through HTTP after the final swap and compared
#: bit-for-bit against a cold-started engine on the final artifact.
PARITY_QUERIES = 400

#: Consecutive fresh /stats responses required before a generation counts
#: as fleet-wide live (each poll lands on an arbitrary worker).
FRESH_CONFIRMATIONS = 6


# ----------------------------------------------------------------------
# HTTP helpers
# ----------------------------------------------------------------------
def http_json(port: int, method: str, path: str, payload=None) -> tuple:
    connection = HTTPConnection(HOST, port, timeout=30.0)
    try:
        body = json.dumps(payload).encode("utf-8") if payload is not None else None
        headers = {"Content-Type": "application/json"} if body else {}
        connection.request(method, path, body=body, headers=headers)
        response = connection.getresponse()
        return response.status, json.loads(response.read())
    finally:
        connection.close()


class QueryHammer:
    """Background closed-loop client: count statuses, never stop mid-swap."""

    def __init__(self, port: int, queries, top_k: int = 5) -> None:
        self.port = port
        self.payload = {
            "queries": [
                {"direction": d, "entity": e, "relation": r, "top_k": top_k}
                for d, e, r in queries
            ]
        }
        self.sent = 0
        self.ok = 0
        self.errors: list = []
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        while not self._stop.is_set():
            self.sent += 1
            try:
                status, _ = http_json(self.port, "POST", "/query", self.payload)
            except Exception as error:  # noqa: BLE001 - tallied, asserted later
                self.errors.append(repr(error))
                continue
            if status == 200:
                self.ok += 1
            else:
                self.errors.append(f"HTTP {status}")

    def __enter__(self) -> "QueryHammer":
        self._thread.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self._stop.set()
        self._thread.join(timeout=60.0)


# ----------------------------------------------------------------------
# Workload
# ----------------------------------------------------------------------
def build_delta_rounds(graph, rounds: int, per_round: int, seed: int = 3):
    """Novel (h, r, t) append batches; one brand-new entity per round."""
    rng = np.random.default_rng(seed)
    known = {tuple(row) for row in np.asarray(graph.train)}
    batches = []
    next_entity = graph.num_entities
    for _ in range(rounds):
        rows = []
        while len(rows) < per_round - 1:
            h = int(rng.integers(graph.num_entities))
            r = int(rng.integers(graph.num_relations))
            t = int(rng.integers(graph.num_entities))
            if h != t and (h, r, t) not in known:
                known.add((h, r, t))
                rows.append((h, r, t))
        # One new entity per round: exercises warm-start + vocab growth.
        rows.append(
            (next_entity, int(rng.integers(graph.num_relations)),
             int(rng.integers(graph.num_entities)))
        )
        next_entity += 1
        batches.append(np.asarray(rows, dtype=np.int64))
    return batches


def build_queries(num_queries: int, entities: int, relations: int, seed: int = 5):
    rng = np.random.default_rng(seed)
    return [
        ("tail" if rng.random() < 0.5 else "head",
         int(rng.integers(entities)), int(rng.integers(relations)))
        for _ in range(num_queries)
    ]


def flip_symlink(link: Path, target: Path) -> None:
    """Atomically repoint ``link`` at ``target`` (tmp symlink + rename)."""
    staging = link.parent / f".{link.name}.tmp"
    if staging.is_symlink() or staging.exists():
        staging.unlink()
    staging.symlink_to(target)
    os.replace(staging, link)


def wait_for_generation(port: int, generation: int, timeout_s: float = 60.0) -> float:
    """Seconds until /stats first answers from ``generation``; confirms
    ``FRESH_CONFIRMATIONS`` consecutive fresh polls before returning."""
    started = time.perf_counter()
    first_fresh = None
    streak = 0
    while time.perf_counter() - started < timeout_s:
        status, stats = http_json(port, "GET", "/stats")
        if status == 200 and stats.get("artifact", {}).get("generation") == generation:
            if first_fresh is None:
                first_fresh = time.perf_counter() - started
            streak += 1
            if streak >= FRESH_CONFIRMATIONS:
                return first_fresh
        else:
            streak = 0
        time.sleep(0.02)
    raise TimeoutError(
        f"fleet never converged on generation {generation} within {timeout_s:.0f}s"
    )


# ----------------------------------------------------------------------
# NullRegistry parity: instrumentation observes, never steers
# ----------------------------------------------------------------------
def check_null_registry_parity(graph, config, delta) -> int:
    """delta → compact → fine-tune twice, telemetry on vs off; must match."""
    outputs = []
    previous = get_registry()
    try:
        for registry in (MetricsRegistry(), NullRegistry()):
            set_registry(registry)
            with tempfile.TemporaryDirectory(prefix="bench_live_parity_") as scratch:
                store = graph.to_store(Path(scratch) / "store")
                store.apply_delta(appends=delta)
                compacted = compact_store(store)
                shard_bytes = b"".join(
                    (compacted.directory / entry["file"]).read_bytes()
                    for split in ("train", "valid", "test")
                    for entry in compacted.manifest["splits"][split]
                )
                model = train_model(graph, "complex", config)
                params, _history, _report = finetune_delta(
                    model.scoring_function, model.params, config, delta
                )
                outputs.append(
                    (shard_bytes, {key: value.tobytes() for key, value in params.items()})
                )
    finally:
        set_registry(previous)
    enabled, disabled = outputs
    if enabled[0] != disabled[0]:
        raise AssertionError("compacted shard bytes differ with telemetry on vs off")
    for key in enabled[1]:
        if enabled[1][key] != disabled[1][key]:
            raise AssertionError(
                f"fine-tuned params[{key!r}] differ with telemetry on vs off"
            )
    return len(delta)


# ----------------------------------------------------------------------
# Parity after the final swap
# ----------------------------------------------------------------------
def check_reload_parity(port: int, artifact_dir: Path, queries) -> int:
    """Post-swap fleet answers must be bit-identical to a cold engine."""
    sample = queries[:PARITY_QUERIES]
    chunk = 100
    oracle = InferenceEngine.from_artifact(
        load_artifact(artifact_dir), result_cache_size=0
    )
    expected = []
    for start in range(0, len(sample), chunk):
        expected.extend(oracle.query_batch(sample[start : start + chunk], top_k=5))
    answers = []
    for start in range(0, len(sample), chunk):
        payload = {
            "queries": [
                {"direction": d, "entity": e, "relation": r, "top_k": 5}
                for d, e, r in sample[start : start + chunk]
            ]
        }
        status, decoded = http_json(port, "POST", "/query", payload)
        if status != 200:
            raise AssertionError(f"parity query failed: HTTP {status}: {decoded}")
        for response in decoded["responses"]:
            answers.append([(p["entity"], p["score"]) for p in response["predictions"]])
    for index, (got, reference) in enumerate(zip(answers, expected)):
        if got != [(entity, score) for entity, score in reference]:
            raise AssertionError(
                f"post-reload answer for query {index} {sample[index]} diverged "
                f"from the cold-started oracle: {got[:3]}... vs {list(reference)[:3]}..."
            )
    return len(sample)


# ----------------------------------------------------------------------
# Main measurement
# ----------------------------------------------------------------------
def build_report(quick: bool) -> tuple:
    scale = 0.2 if quick else 0.5
    rounds = 3 if quick else 6
    per_round = 12 if quick else 48
    dim = 16
    epochs = 2 if quick else 6

    graph = load_benchmark("wn18rr", scale=scale, seed=0)
    config = TrainingConfig(
        dimension=dim, epochs=epochs, batch_size=128, learning_rate=0.1,
        loss="logistic", negative_samples=4, seed=0,
    )
    deltas = build_delta_rounds(graph, rounds, per_round)
    queries = build_queries(1000, graph.num_entities, graph.num_relations)

    parity_deltas = check_null_registry_parity(graph, config, deltas[0])

    with tempfile.TemporaryDirectory(prefix="bench_live_") as scratch_str:
        scratch = Path(scratch_str)
        store = graph.to_store(scratch / "store")
        model = train_model(graph, "complex", config)
        generations = scratch / "generations"
        generations.mkdir()
        gen_dir = generations / "gen-00001"
        export_artifact(model, gen_dir, graph=graph, generation=1)
        current = generations / "current"
        current.symlink_to(gen_dir)

        fleet = ServingFleet(
            current, host=HOST, port=0, workers=2,
            micro_batch_window_ms=0.0, result_cache_size=0,
        )
        port = fleet.start()
        round_rows = []
        params = model.params
        try:
            wait_until_healthy(HOST, port, timeout_s=30.0)
            wait_for_generation(port, 1)
            with QueryHammer(port, queries[:32]) as hammer:
                for index, delta in enumerate(deltas):
                    round_started = time.perf_counter()
                    generation = store.apply_delta(appends=delta)
                    params, _history, report = finetune_delta(
                        model.scoring_function, params, config, delta
                    )
                    next_model = KGEModel(model.scoring_function, config, params=params)
                    next_dir = generations / f"gen-{generation + 1:05d}"
                    export_artifact(next_model, next_dir, generation=generation + 1)
                    published = time.perf_counter()
                    flip_symlink(current, next_dir)
                    fleet.signal_reload()
                    staleness_s = wait_for_generation(port, generation + 1)
                    round_rows.append({
                        "round": index + 1,
                        "generation": generation + 1,
                        "delta_triples": int(delta.shape[0]),
                        "new_entities": report.new_entities,
                        "pipeline_s": published - round_started,
                        "staleness_s": staleness_s,
                    })
            hammer_sent, hammer_ok, hammer_errors = hammer.sent, hammer.ok, list(hammer.errors)
            parity_queries = check_reload_parity(
                port, generations / f"gen-{rounds + 1:05d}", queries
            )
        finally:
            fleet.terminate()
            exit_status = fleet.wait()
            fleet.close()
        if exit_status != 0:
            raise RuntimeError(f"fleet worker exited with status {exit_status}")

        # The store still has every delta pending: compact and check the
        # merged view survives (tier-1 asserts bit-parity with re-ingest).
        compacted = compact_store(store)
        compacted_triples = int(compacted.split_count("train"))

    if hammer_errors:
        raise AssertionError(
            f"{len(hammer_errors)} of {hammer_sent} requests failed during the "
            f"swaps; first: {hammer_errors[0]}"
        )
    worst_staleness = max(row["staleness_s"] for row in round_rows)
    if quick and worst_staleness > STALENESS_CEILING_S:
        raise AssertionError(
            f"staleness-to-freshness {worst_staleness:.2f}s exceeds the "
            f"{STALENESS_CEILING_S:.0f}s ceiling"
        )
    total_delta_triples = sum(row["delta_triples"] for row in round_rows)
    total_pipeline_s = sum(row["pipeline_s"] + row["staleness_s"] for row in round_rows)

    table = format_table(
        [
            {
                "round": row["round"],
                "generation": row["generation"],
                "delta_triples": row["delta_triples"],
                "new_entities": row["new_entities"],
                "pipeline_ms": f"{row['pipeline_s'] * 1000:.0f}",
                "staleness_ms": f"{row['staleness_s'] * 1000:.0f}",
            }
            for row in round_rows
        ],
        title=f"Live ingest while serving (E={graph.num_entities}, "
        f"R={graph.num_relations}, d={dim}, 2 workers, {os.cpu_count()} core(s))",
    )
    note = (
        f"{total_delta_triples} delta triples through "
        f"apply_delta→finetune→export→reload in {total_pipeline_s:.2f}s "
        f"({total_delta_triples / total_pipeline_s:.1f} triples/s); "
        f"worst staleness-to-freshness {worst_staleness * 1000:.0f} ms "
        f"(ceiling {STALENESS_CEILING_S:.0f}s); "
        f"{hammer_ok}/{hammer_sent} in-flight requests OK (0 dropped); "
        f"{parity_queries} post-reload answers bit-identical to a cold engine; "
        f"NullRegistry parity over {parity_deltas} delta triples; "
        f"compacted store holds {compacted_triples} train triples"
    )
    data = {
        "quick": quick,
        "entities": graph.num_entities,
        "relations": graph.num_relations,
        "dimension": dim,
        "rounds": rounds,
        "delta_triples_per_round": per_round,
        "cores": os.cpu_count(),
        "rounds_detail": round_rows,
        "ingest_triples_per_s": total_delta_triples / total_pipeline_s,
        "worst_staleness_s": worst_staleness,
        "staleness_ceiling_s": STALENESS_CEILING_S,
        "hammer_sent": hammer_sent,
        "hammer_ok": hammer_ok,
        "hammer_errors": len(hammer_errors),
        "parity_queries": parity_queries,
        "null_registry_parity_deltas": parity_deltas,
    }
    return table + "\n" + note, data


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: fewer/smaller rounds (still asserts the "
        "staleness ceiling, zero dropped requests, and reload bit-parity)",
    )
    args = parser.parse_args(argv)

    text, data = build_report(quick=args.quick)
    publish("live_ingest", text)
    to_json_file(data, RESULTS_DIR / "live_ingest.json")
    write_bench_summary(
        "live",
        config={
            key: data[key]
            for key in (
                "quick", "entities", "relations", "dimension", "rounds",
                "delta_triples_per_round", "cores",
            )
        },
        metrics={
            "ingest_triples_per_s": data["ingest_triples_per_s"],
            "worst_staleness_s": data["worst_staleness_s"],
            "hammer_sent": data["hammer_sent"],
            "hammer_errors": data["hammer_errors"],
            "parity_queries": data["parity_queries"],
        },
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
