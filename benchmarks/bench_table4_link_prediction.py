"""Table IV — link prediction: AutoSF vs. human-designed scoring functions.

For every miniature benchmark the bench trains the bilinear baselines
(DistMult, ComplEx, Analogy, SimplE) and runs a scaled-down AutoSF search,
then reports test MRR / Hits@1 / Hits@10 side by side with the paper's
values.  The paper's absolute numbers were obtained on the full datasets at
d up to 2048, so only the qualitative shape is expected to transfer:
AutoSF should be at or near the top on every dataset, and DistMult should
lag on datasets rich in anti-symmetric/inverse relations.
"""

from __future__ import annotations

from _helpers import BENCH_SCALE, bench_search_config, bench_training_config, publish

from repro.analysis import format_table
from repro.core import AutoSFSearch
from repro.datasets import available_benchmarks, load_benchmark
from repro.kge import train_model

#: Paper-reported test MRR (Table IV) for the re-implemented models.
PAPER_MRR = {
    "wn18": {"distmult": 0.821, "complex": 0.951, "analogy": 0.950, "simple": 0.950, "autosf": 0.952},
    "fb15k": {"distmult": 0.817, "complex": 0.831, "analogy": 0.829, "simple": 0.830, "autosf": 0.853},
    "wn18rr": {"distmult": 0.443, "complex": 0.471, "analogy": 0.472, "simple": 0.468, "autosf": 0.490},
    "fb15k237": {"distmult": 0.349, "complex": 0.347, "analogy": 0.348, "simple": 0.350, "autosf": 0.360},
    "yago310": {"distmult": 0.552, "complex": 0.566, "analogy": 0.565, "simple": 0.565, "autosf": 0.571},
}

BASELINES = ("distmult", "complex", "analogy", "simple")
SEARCH_BUDGET = 9  # trained candidates per dataset (5 seeds + one greedy stage)


def run_dataset(benchmark_name: str) -> list:
    graph = load_benchmark(benchmark_name, scale=BENCH_SCALE)
    training_config = bench_training_config()
    rows = []
    for model_name in BASELINES:
        model = train_model(graph, model_name, training_config)
        result = model.evaluate(graph, split="test")
        rows.append(
            {
                "dataset": benchmark_name,
                "model": model_name,
                "mrr": result.mrr,
                "hits@1": result.hits_at(1),
                "hits@10": result.hits_at(10),
                "mrr_paper": PAPER_MRR[benchmark_name][model_name],
            }
        )
    search = AutoSFSearch(graph, training_config, bench_search_config())
    search_result = search.run(max_evaluations=SEARCH_BUDGET)
    # The paper re-trains the searched SF before the final comparison; at
    # miniature scale retraining noise matters, so the top few searched
    # structures are retrained and the final pick is made on validation MRR.
    best_model, best_valid = None, -1.0
    for record in search_result.top(2):
        candidate = train_model(graph, record.structure, training_config)
        valid_mrr = candidate.evaluate(graph, split="valid").mrr
        if valid_mrr > best_valid:
            best_model, best_valid = candidate, valid_mrr
    result = best_model.evaluate(graph, split="test")
    rows.append(
        {
            "dataset": benchmark_name,
            "model": "autosf",
            "mrr": result.mrr,
            "hits@1": result.hits_at(1),
            "hits@10": result.hits_at(10),
            "mrr_paper": PAPER_MRR[benchmark_name]["autosf"],
        }
    )
    return rows


def build_table() -> str:
    rows = []
    for benchmark_name in available_benchmarks():
        rows.extend(run_dataset(benchmark_name))
    return format_table(
        rows, title="Table IV: link prediction, AutoSF vs. human-designed SFs (test split)"
    )


def test_table4_link_prediction(benchmark):
    table = benchmark.pedantic(build_table, rounds=1, iterations=1)
    publish("table4_link_prediction", table)
    assert "autosf" in table
