"""Query-throughput benchmark: batched inference engine vs the naive path.

Measures the serving hot path on the largest built-in miniature benchmark:

* **throughput**: wall-clock of answering a heterogeneous head/tail query
  workload through the naive per-query ``KGEModel.predict_*`` path vs the
  batched ``InferenceEngine`` (relation-materialized operators, micro-batched
  GEMMs, ``argpartition`` top-k), in queries/sec, for a 2-block classical
  structure and a 6-block search-space structure;
* **parity**: the engine's ranked entities must agree *exactly* with the
  naive oracle on every query, with scores within float round-off (measured,
  not assumed — the run fails otherwise);
* **caching**: a second pass over the same workload, showing the LRU
  result-cache throughput.

Runs standalone (CI calls it with ``--quick`` and uploads the JSON timings
as an artifact)::

    PYTHONPATH=src python benchmarks/bench_query_throughput.py --quick

Results are printed as a table and written to
``benchmarks/results/query_throughput.json`` so regressions are visible per
revision.
"""

from __future__ import annotations

import argparse
import time

import numpy as np

from _helpers import bench_training_config, publish, write_bench_summary, RESULTS_DIR

from repro.analysis import format_table
from repro.datasets import load_benchmark
from repro.kge.model import KGEModel, train_model
from repro.kge.scoring.blocks import BlockStructure, classical_structure
from repro.serving import InferenceEngine
from repro.utils.serialization import to_json_file

#: The largest built-in miniature benchmark.
LARGEST_BENCHMARK = "yago310"

#: A representative 6-block structure (the search trains mostly 4-6 block SFs).
SIX_BLOCK_STRUCTURE = BlockStructure(
    [(0, 0, 0, 1), (1, 1, 1, 1), (2, 3, 2, 1), (3, 2, 2, -1), (0, 1, 3, 1), (1, 0, 3, -1)],
    name="six-blocks",
)

#: Acceptance floor: the batched engine must beat the naive path by this much.
SPEEDUP_FLOOR = 3.0


def build_workload(graph, num_queries: int) -> list:
    """Heterogeneous (direction, entity, relation) queries from test triples.

    Deduplicated: test triples sharing (h, r) would repeat the same query,
    which the engine answers once per batch — the timing comparison should
    measure batched scoring, not deduplication.
    """
    queries = []
    seen = set()
    for h, r, t in graph.test:
        for query in (("tail", int(h), int(r)), ("head", int(t), int(r))):
            if query not in seen:
                seen.add(query)
                queries.append(query)
        if len(queries) >= num_queries:
            break
    return queries[:num_queries]


def run_naive(model: KGEModel, workload, top_k: int) -> list:
    results = []
    for direction, entity, relation in workload:
        if direction == "tail":
            results.append(list(model.predict_tails(entity, relation, top_k=top_k)))
        else:
            results.append(list(model.predict_heads(relation, entity, top_k=top_k)))
    return results


def check_parity(batched, naive) -> float:
    """Exact entity-order agreement; returns the worst score delta."""
    worst = 0.0
    for answer, expected in zip(batched, naive):
        if [entity for entity, _ in answer] != [entity for entity, _ in expected]:
            raise AssertionError(
                f"engine and naive path ranked different entities: "
                f"{answer[:3]}... vs {expected[:3]}..."
            )
        for (_, a), (_, b) in zip(answer, expected):
            worst = max(worst, abs(a - b))
    return worst


def measure(graph, config, workload, top_k: int, repeats: int) -> tuple:
    rows = []
    worst_delta = 0.0
    for label, structure in (
        ("simple (2 blocks)", classical_structure("simple")),
        ("six-blocks (6 blocks)", SIX_BLOCK_STRUCTURE),
    ):
        model = train_model(graph, structure, config)
        engine = InferenceEngine(model.scoring_function, model.params)

        naive_best = float("inf")
        naive_results = None
        for _ in range(repeats):
            start = time.perf_counter()
            naive_results = run_naive(model, workload, top_k)
            naive_best = min(naive_best, time.perf_counter() - start)

        batched_best = float("inf")
        batched_results = None
        for _ in range(repeats):
            cold = InferenceEngine(model.scoring_function, model.params)
            start = time.perf_counter()
            batched_results = cold.query_batch(workload, top_k=top_k)
            batched_best = min(batched_best, time.perf_counter() - start)

        engine.query_batch(workload, top_k=top_k)  # warm the result cache
        start = time.perf_counter()
        cached = engine.query_batch(workload, top_k=top_k)
        cached_s = time.perf_counter() - start
        check_parity(cached, batched_results)

        worst_delta = max(worst_delta, check_parity(batched_results, naive_results))
        rows.append(
            {
                "structure": label,
                "naive_qps": len(workload) / naive_best,
                "batched_qps": len(workload) / batched_best,
                "cached_qps": len(workload) / cached_s,
                "speedup": naive_best / batched_best,
            }
        )
    return rows, worst_delta


def build_report(quick: bool) -> tuple:
    graph = load_benchmark(LARGEST_BENCHMARK, scale=1.0)
    config = bench_training_config(epochs=2 if quick else 6)
    workload = build_workload(graph, 800 if quick else 2000)
    repeats = 3 if quick else 5

    throughput, worst_delta = measure(graph, config, workload, top_k=10, repeats=repeats)
    table = format_table(
        throughput,
        title=f"Query throughput on {graph.name} "
        f"(E={graph.num_entities}, {len(workload)} heterogeneous queries, top-10)",
    )
    note = f"worst |score delta| engine vs naive oracle: {worst_delta:.2e} (entity order exact)"
    data = {
        "benchmark": graph.name,
        "entities": graph.num_entities,
        "queries": len(workload),
        "quick": quick,
        "throughput": throughput,
        "worst_score_delta": worst_delta,
    }
    return table + "\n" + note, data


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: fewer training epochs and queries (still checks parity)",
    )
    args = parser.parse_args(argv)

    text, data = build_report(quick=args.quick)
    publish("query_throughput", text)
    to_json_file(data, RESULTS_DIR / "query_throughput.json")
    write_bench_summary(
        "query",
        config={
            "quick": args.quick,
            "benchmark": data["benchmark"],
            "entities": data["entities"],
            "queries": data["queries"],
        },
        metrics={
            "speedup_min": min(row["speedup"] for row in data["throughput"]),
            "batched_qps": {
                row["structure"]: row["batched_qps"] for row in data["throughput"]
            },
            "worst_score_delta": data["worst_score_delta"],
        },
    )

    if data["worst_score_delta"] > 1e-9:
        print(f"FAIL: engine/oracle score delta {data['worst_score_delta']:.2e} > 1e-9")
        return 1
    worst_speedup = min(row["speedup"] for row in data["throughput"])
    if worst_speedup < SPEEDUP_FLOOR:
        print(f"FAIL: batched speedup {worst_speedup:.2f}x below the {SPEEDUP_FLOOR}x floor")
        return 1
    print(
        f"OK: batched engine {worst_speedup:.2f}x+ over the naive per-query path, "
        f"entity order exactly matches the oracle"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
