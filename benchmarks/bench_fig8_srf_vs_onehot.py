"""Figure 8 — SRF features vs. one-hot features for the predictor.

The paper compares the proposed symmetry-related features (a 22-2-1
predictor) against the PNAS-style one-hot encoding of the structure (a wider
network) and against no predictor at all.  SRFs are invariant on equivalence
classes and tied to the symmetry properties that matter, so the SRF
predictor finds good candidates sooner.
"""

from __future__ import annotations

from _helpers import BENCH_SCALE, bench_search_config, bench_training_config, publish

from repro.analysis import format_series
from repro.core import AutoSFSearch, CandidateEvaluator
from repro.datasets import load_benchmark
from repro.utils.config import PredictorConfig

DATASETS = ("wn18rr", "fb15k237")
BUDGET = 9

VARIANTS = {
    "srf_predictor": PredictorConfig(feature_type="srf", hidden_units=2, epochs=200),
    "onehot_predictor": PredictorConfig(feature_type="onehot", hidden_units=8, epochs=200),
    "no_predictor": None,
}


def build_report() -> str:
    training_config = bench_training_config()
    sections = []
    for benchmark_name in DATASETS:
        graph = load_benchmark(benchmark_name, scale=BENCH_SCALE)
        evaluator = CandidateEvaluator(graph, training_config)
        curves = {}
        for variant_name, predictor_config in VARIANTS.items():
            if predictor_config is None:
                config = bench_search_config(use_predictor=False)
            else:
                config = bench_search_config(predictor=predictor_config)
            result = AutoSFSearch(graph, training_config, config, evaluator=evaluator).run(
                max_evaluations=BUDGET
            )
            curves[variant_name] = result.anytime_curve()
        sections.append(
            format_series(
                curves,
                title=f"Fig. 8 ({benchmark_name}): SRF vs. one-hot predictor features",
                index_label="model#",
            )
        )
    return "\n\n".join(sections)


def test_fig8_srf_vs_onehot(benchmark):
    report = benchmark.pedantic(build_report, rounds=1, iterations=1)
    publish("fig8_srf_vs_onehot", report)
    assert "srf_predictor" in report
