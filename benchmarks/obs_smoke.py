"""Observability smoke: scrape ``GET /metrics`` from a live 2-worker fleet.

End-to-end check of the telemetry layer's serving surface, driven exactly
the way an operator's Prometheus would drive it:

1. start ``repro.cli serve --workers 2`` as a subprocess over a tiny
   synthetic artifact (pre-forked workers share one inherited listener, so
   consecutive scrapes on fresh connections land on different workers);
2. fire a query burst, then scrape ``/metrics`` on fresh connections until
   both workers have answered — each response must parse as valid
   Prometheus text exposition (``parse_prometheus`` round-trip) and carry
   the 0.0.4 content type;
3. fire a second burst and scrape both workers again: per-worker
   ``repro_http_requests_total`` must be **monotonically non-decreasing**
   and the fleet-wide sum must have grown by at least the burst size;
4. SIGTERM the fleet and require a clean exit.

Runs standalone (CI calls it from the ``obs-smoke`` job)::

    PYTHONPATH=src python benchmarks/obs_smoke.py --quick
"""

from __future__ import annotations

import argparse
import json
import signal
import socket
import subprocess
import sys
import tempfile
import time
from http.client import HTTPConnection
from pathlib import Path

from _helpers import publish, write_bench_summary

from repro.kge.model import KGEModel
from repro.kge.scoring import get_scoring_function
from repro.obs.metrics import PROMETHEUS_CONTENT_TYPE, parse_prometheus
from repro.serving import export_artifact, wait_until_healthy
from repro.utils.config import TrainingConfig

HOST = "127.0.0.1"

#: Distinct worker registries the scrape loop must observe.
WORKERS = 2

#: Queries per burst (fresh connection each, so the accept queue spreads
#: them across both workers).
BURST = 40

#: Scrape attempts before concluding one worker never answers.
MAX_SCRAPES = 200


def make_artifact(directory: Path) -> Path:
    """A tiny deterministic artifact — this bench measures plumbing, not perf."""
    scoring = get_scoring_function("complex")
    params = scoring.init_params(2000, 8, 16, rng=0)
    model = KGEModel(scoring, TrainingConfig(dimension=16, epochs=1, seed=0), params=params)
    return export_artifact(model, directory / "artifact")


def pick_free_port() -> int:
    with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as probe:
        probe.bind((HOST, 0))
        return probe.getsockname()[1]


def http_request(port: int, method: str, path: str, payload=None):
    """One request on a fresh connection; returns (status, headers, body bytes)."""
    connection = HTTPConnection(HOST, port, timeout=30.0)
    try:
        body = None
        headers = {}
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        connection.request(method, path, body=body, headers=headers)
        response = connection.getresponse()
        return response.status, dict(response.getheaders()), response.read()
    finally:
        connection.close()


def query_burst(port: int, count: int) -> None:
    for index in range(count):
        payload = {
            "queries": [
                {"direction": "tail", "entity": index % 2000, "relation": index % 8, "top_k": 5}
            ]
        }
        status, _, body = http_request(port, "POST", "/query", payload)
        if status != 200:
            raise RuntimeError(f"query burst failed: HTTP {status}: {body[:200]!r}")


def scrape_worker(port: int) -> tuple:
    """One /metrics scrape; returns (worker_id, parsed exposition)."""
    status, headers, body = http_request(port, "GET", "/metrics")
    if status != 200:
        raise RuntimeError(f"/metrics returned HTTP {status}: {body[:200]!r}")
    content_type = headers.get("Content-Type", "")
    if content_type != PROMETHEUS_CONTENT_TYPE:
        raise RuntimeError(
            f"/metrics Content-Type {content_type!r} != {PROMETHEUS_CONTENT_TYPE!r}"
        )
    parsed = parse_prometheus(body.decode("utf-8"))
    worker_ids = {
        dict(labels)["worker_id"]
        for name, labels in parsed["samples"]
        if name == "repro_worker_info"
    }
    if len(worker_ids) != 1:
        raise RuntimeError(f"expected exactly one repro_worker_info sample, got {worker_ids}")
    return worker_ids.pop(), parsed


def scrape_all_workers(port: int) -> dict:
    """Scrape on fresh connections until every worker's registry was seen."""
    seen: dict = {}
    for _ in range(MAX_SCRAPES):
        worker_id, parsed = scrape_worker(port)
        seen[worker_id] = parsed
        if len(seen) >= WORKERS:
            return seen
        time.sleep(0.01)
    raise RuntimeError(
        f"saw only worker(s) {sorted(seen)} after {MAX_SCRAPES} scrapes; "
        f"expected {WORKERS} distinct workers"
    )


def requests_total(parsed: dict, worker_id: str) -> float:
    key = ("repro_http_requests_total", (("worker_id", worker_id),))
    return parsed["samples"].get(key, 0.0)


def run_smoke() -> dict:
    port = pick_free_port()
    with tempfile.TemporaryDirectory(prefix="obs_smoke_") as scratch:
        artifact_dir = make_artifact(Path(scratch))
        command = [
            sys.executable, "-m", "repro.cli", "serve",
            "--artifact", str(artifact_dir),
            "--host", HOST, "--port", str(port),
            "--workers", str(WORKERS),
        ]
        server = subprocess.Popen(command)
        try:
            wait_until_healthy(HOST, port, timeout_s=60.0)
            query_burst(port, BURST)
            first = scrape_all_workers(port)
            query_burst(port, BURST)
            second = scrape_all_workers(port)
        finally:
            server.send_signal(signal.SIGTERM)
            try:
                exit_status = server.wait(timeout=30.0)
            except subprocess.TimeoutExpired:
                server.kill()
                raise RuntimeError("fleet ignored SIGTERM")
    if exit_status != 0:
        raise RuntimeError(f"fleet exited with status {exit_status}")

    counters = {}
    for worker_id in sorted(first):
        before = requests_total(first[worker_id], worker_id)
        after = requests_total(second[worker_id], worker_id)
        if after < before:
            raise AssertionError(
                f"worker {worker_id}: repro_http_requests_total went backwards "
                f"({before} -> {after}) — counters must be monotone"
            )
        type_name = second[worker_id]["types"].get("repro_http_requests_total")
        if type_name != "counter":
            raise AssertionError(
                f"worker {worker_id}: repro_http_requests_total has TYPE "
                f"{type_name!r}, expected 'counter'"
            )
        counters[worker_id] = {"before": before, "after": after}
    total_before = sum(entry["before"] for entry in counters.values())
    total_after = sum(entry["after"] for entry in counters.values())
    if total_after - total_before < BURST:
        raise AssertionError(
            f"fleet-wide repro_http_requests_total grew by only "
            f"{total_after - total_before} across a burst of {BURST} queries"
        )
    return {
        "workers": WORKERS,
        "burst": BURST,
        "requests_total_by_worker": counters,
        "fleet_requests_before": total_before,
        "fleet_requests_after": total_after,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="accepted for run_all.py symmetry; this smoke is already minimal",
    )
    parser.parse_args(argv)

    data = run_smoke()
    lines = [
        f"Observability smoke: {data['workers']}-worker fleet, "
        f"2 bursts x {data['burst']} queries",
    ]
    for worker_id, entry in sorted(data["requests_total_by_worker"].items()):
        lines.append(
            f"  worker {worker_id}: repro_http_requests_total "
            f"{entry['before']:.0f} -> {entry['after']:.0f}"
        )
    lines.append(
        f"  fleet total {data['fleet_requests_before']:.0f} -> "
        f"{data['fleet_requests_after']:.0f} (>= burst {data['burst']})"
    )
    publish("obs_smoke", "\n".join(lines))
    write_bench_summary(
        "obs",
        config={"workers": data["workers"], "burst": data["burst"]},
        metrics={
            "fleet_requests_before": data["fleet_requests_before"],
            "fleet_requests_after": data["fleet_requests_after"],
            "requests_total_by_worker": data["requests_total_by_worker"],
        },
    )
    print(
        f"OK: both workers served valid Prometheus exposition; per-worker "
        f"request counters monotone across a {data['burst']}-query burst"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
