"""Dataset-pipeline benchmark: sharded store + TripleStream vs the seed loader.

Three measurements, each with a hard assertion so CI catches regressions:

* **ingestion**: a synthetic TSV benchmark parsed by the seed line-by-line
  loader (``load_tsv_dataset``) vs the chunked bytes-level shard ingester
  (``ingest_tsv``), with exact vocabulary/triple parity asserted and the
  speedup required to stay above :data:`MIN_INGEST_SPEEDUP`;
* **epoch iteration**: shuffled mini-batches over a generated multi-shard
  store — the seed in-memory pattern (global permutation + per-batch fancy
  indexing, exactly what ``Trainer.fit`` does on an array) vs
  ``TripleStream`` (shard-order shuffle + per-shard ``np.take``).  Exact
  batch-level parity is asserted against the in-memory oracle
  ``stream_epoch_reference`` and the throughput speedup must reach
  :data:`MIN_EPOCH_SPEEDUP`;
* **bounded memory**: the same ≥1M-triple synthetic store is generated
  shard by shard and streamed for one epoch under ``tracemalloc``; the
  traced peak must stay under a quarter of the materialized split size.

Runs standalone (CI calls it with ``--quick`` and uploads the JSON timings
as an artifact)::

    PYTHONPATH=src python benchmarks/bench_dataset_pipeline.py --quick

Results are printed as a table and written to
``benchmarks/results/dataset_pipeline.json`` / ``.txt``.
"""

from __future__ import annotations

import argparse
import shutil
import tempfile
import time
import tracemalloc
from pathlib import Path

import numpy as np

from _helpers import publish, write_bench_summary, RESULTS_DIR

from repro.analysis import format_table
from repro.datasets import (
    TripleStream,
    generate_streaming_store,
    ingest_tsv,
    load_tsv_dataset,
    stream_epoch_reference,
)
from repro.utils.serialization import to_json_file

#: Required ingestion speedup of ingest_tsv over the seed TSV loader.
#: Typically 1.4-1.7x; the floor is deliberately loose because a few
#: hundred ms of parsing on a shared CI runner is noisy even at min-of-two.
MIN_INGEST_SPEEDUP = 1.05

#: Required epoch-iteration speedup of TripleStream over the seed pattern.
MIN_EPOCH_SPEEDUP = 2.0

#: The streamed epoch must stay under this fraction of the split's bytes.
MAX_MEMORY_FRACTION = 0.25

#: Mini-batch size for the epoch-iteration measurements.
BATCH_SIZE = 512


def _write_synthetic_tsv(base: Path, num_train: int, rng: np.random.Generator) -> None:
    """Write a duplicate-free synthetic benchmark in the standard TSV layout."""
    num_entities, num_relations = 8000, 40

    def unique_codes(count: int) -> np.ndarray:
        codes = np.unique(
            rng.integers(0, num_entities * num_relations * num_entities, size=int(count * 1.3))
        )
        rng.shuffle(codes)
        return codes[:count]

    for file_name, count in (
        ("train.txt", num_train),
        ("valid.txt", num_train // 10),
        ("test.txt", num_train // 10),
    ):
        codes = unique_codes(count)
        tails = codes % num_entities
        relations = (codes // num_entities) % num_relations
        heads = codes // (num_entities * num_relations)
        lines = [
            f"/m/entity_{h:05d}\t/rel/relation_{r:02d}\t/m/entity_{t:05d}"
            for h, r, t in zip(heads, relations, tails)
        ]
        (base / file_name).write_text("\n".join(lines) + "\n", encoding="utf-8")


def bench_ingestion(work: Path, num_train: int) -> dict:
    tsv_dir = work / "tsv"
    tsv_dir.mkdir()
    _write_synthetic_tsv(tsv_dir, num_train, np.random.default_rng(0))

    # Best of two passes each: parse times in the hundreds of ms are at the
    # mercy of CI scheduler noise, and the min is the honest parse cost.
    seed_seconds = float("inf")
    for _attempt in range(2):
        start = time.perf_counter()
        oracle = load_tsv_dataset(tsv_dir)
        seed_seconds = min(seed_seconds, time.perf_counter() - start)

    ingest_seconds = float("inf")
    for attempt in range(2):
        shutil.rmtree(work / "store-ingest", ignore_errors=True)
        start = time.perf_counter()
        store = ingest_tsv(tsv_dir, work / "store-ingest")
        ingest_seconds = min(ingest_seconds, time.perf_counter() - start)

    loaded = store.to_graph()
    for split in ("train", "valid", "test"):
        np.testing.assert_array_equal(loaded.split(split), oracle.split(split))
    assert loaded.entity_names == oracle.entity_names, "ingest vocabulary diverged"
    assert loaded.relation_names == oracle.relation_names, "ingest vocabulary diverged"

    speedup = seed_seconds / ingest_seconds
    assert speedup >= MIN_INGEST_SPEEDUP, (
        f"ingest_tsv speedup {speedup:.2f}x is below the required "
        f"{MIN_INGEST_SPEEDUP:.1f}x (seed {seed_seconds:.2f}s, ingest {ingest_seconds:.2f}s)"
    )
    return {
        "triples": int(sum(loaded.split(s).shape[0] for s in ("train", "valid", "test"))),
        "seed_loader_seconds": round(seed_seconds, 4),
        "ingest_seconds": round(ingest_seconds, 4),
        "speedup": round(speedup, 2),
    }


def _seed_epoch(train: np.ndarray, rng: np.random.Generator) -> int:
    """The seed in-memory pattern: global permutation + per-batch gather."""
    order = rng.permutation(train.shape[0])
    batches = 0
    for begin in range(0, train.shape[0], BATCH_SIZE):
        batch = train[order[begin : begin + BATCH_SIZE]]
        batches += batch.shape[0] > 0
    return batches


def bench_epoch_iteration(store, epochs: int) -> dict:
    train = store.load_split("train")
    stream = TripleStream(store, "train", batch_size=BATCH_SIZE, seed=0)

    # Exact batch-level parity against the in-memory oracle first.
    reference = stream_epoch_reference(
        train, store.shard_counts("train"), BATCH_SIZE, 0, epoch=0
    )
    streamed = list(stream.epoch(0))
    assert len(streamed) == len(reference), "stream produced a different batch count"
    for got, expected in zip(streamed, reference):
        np.testing.assert_array_equal(got, expected)

    rng = np.random.default_rng(0)
    seed_times, stream_times = [], []
    for epoch in range(epochs):
        start = time.perf_counter()
        _seed_epoch(train, rng)
        seed_times.append(time.perf_counter() - start)
        start = time.perf_counter()
        for _batch in stream.epoch(epoch):
            pass
        stream_times.append(time.perf_counter() - start)

    seed_best = min(seed_times)
    stream_best = min(stream_times)
    speedup = seed_best / stream_best
    assert speedup >= MIN_EPOCH_SPEEDUP, (
        f"TripleStream epoch speedup {speedup:.2f}x is below the required "
        f"{MIN_EPOCH_SPEEDUP:.1f}x (seed {seed_best:.3f}s, stream {stream_best:.3f}s)"
    )
    return {
        "train_triples": int(train.shape[0]),
        "shards": store.num_shards("train"),
        "batch_size": BATCH_SIZE,
        "seed_epoch_seconds": round(seed_best, 4),
        "stream_epoch_seconds": round(stream_best, 4),
        "seed_triples_per_second": int(train.shape[0] / seed_best),
        "stream_triples_per_second": int(train.shape[0] / stream_best),
        "speedup": round(speedup, 2),
    }


def bench_bounded_memory(store) -> dict:
    split_bytes = store.split_count("train") * 3 * 8
    stream = TripleStream(store, "train", batch_size=BATCH_SIZE, seed=1)

    tracemalloc.start()
    batches = 0
    for _batch in stream.epoch(0):
        batches += 1
    _current, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    fraction = peak / split_bytes
    assert fraction <= MAX_MEMORY_FRACTION, (
        f"streamed epoch peak {peak / 2**20:.1f} MiB is {fraction:.2f} of the "
        f"materialized split ({split_bytes / 2**20:.1f} MiB); the stream must "
        f"stay under {MAX_MEMORY_FRACTION:.2f}"
    )
    return {
        "train_triples": store.split_count("train"),
        "batches": batches,
        "split_mib": round(split_bytes / 2**20, 2),
        "stream_peak_mib": round(peak / 2**20, 2),
        "peak_fraction_of_split": round(fraction, 4),
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="CI-sized run")
    parser.add_argument(
        "--triples",
        type=int,
        default=None,
        help="synthetic store size (default: 2M; the acceptance floor is 1M)",
    )
    args = parser.parse_args()

    tsv_train = 150_000 if args.quick else 400_000
    store_triples = args.triples if args.triples is not None else 2_000_000
    epochs = 5 if args.quick else 8

    work = Path(tempfile.mkdtemp(prefix="bench-dataset-pipeline-"))
    try:
        print(f"[1/3] ingestion: seed loader vs chunked shard ingest ({tsv_train} train triples)")
        ingestion = bench_ingestion(work, tsv_train)

        print(f"[2/3] generating a {store_triples}-triple multi-shard synthetic store")
        start = time.perf_counter()
        store = generate_streaming_store(
            work / "store-synthetic",
            num_entities=20_000,
            num_relations=48,
            num_triples=store_triples,
            valid_fraction=0.01,
            test_fraction=0.01,
            seed=0,
        )
        generation_seconds = time.perf_counter() - start
        print(f"      generated in {generation_seconds:.2f}s "
              f"({store.num_shards('train')} train shards)")

        print(f"      epoch iteration: seed in-memory pattern vs TripleStream ({epochs} epochs)")
        iteration = bench_epoch_iteration(store, epochs)

        print("[3/3] bounded-memory streamed epoch (tracemalloc)")
        memory = bench_bounded_memory(store)
    finally:
        shutil.rmtree(work, ignore_errors=True)

    results = {
        "quick": bool(args.quick),
        "ingestion": ingestion,
        "store_generation_seconds": round(generation_seconds, 2),
        "epoch_iteration": iteration,
        "bounded_memory": memory,
    }
    rows = [
        {
            "measurement": "ingestion (TSV -> triples)",
            "seed": f"{ingestion['seed_loader_seconds']:.2f}s",
            "pipeline": f"{ingestion['ingest_seconds']:.2f}s",
            "speedup": f"{ingestion['speedup']:.2f}x",
        },
        {
            "measurement": f"epoch iteration ({iteration['train_triples']} triples)",
            "seed": f"{iteration['seed_epoch_seconds']:.3f}s",
            "pipeline": f"{iteration['stream_epoch_seconds']:.3f}s",
            "speedup": f"{iteration['speedup']:.2f}x",
        },
        {
            "measurement": "streamed-epoch peak memory",
            "seed": f"{memory['split_mib']:.1f} MiB split",
            "pipeline": f"{memory['stream_peak_mib']:.1f} MiB peak",
            "speedup": f"{memory['peak_fraction_of_split']:.3f} of split",
        },
    ]
    publish(
        "dataset_pipeline",
        format_table(rows, title="Dataset pipeline: sharded store vs seed loader"),
    )
    to_json_file(results, RESULTS_DIR / "dataset_pipeline.json")
    write_bench_summary(
        "dataset",
        config={
            "quick": bool(args.quick),
            "tsv_train": tsv_train,
            "store_triples": store_triples,
            "epochs": epochs,
        },
        metrics={
            "ingest_speedup": ingestion["speedup"],
            "epoch_speedup": iteration["speedup"],
            "store_generation_seconds": round(generation_seconds, 2),
            "stream_peak_mib": memory["stream_peak_mib"],
            "peak_fraction_of_split": memory["peak_fraction_of_split"],
        },
    )
    print("all pipeline assertions passed "
          f"(ingest >= {MIN_INGEST_SPEEDUP}x, epoch >= {MIN_EPOCH_SPEEDUP}x, "
          f"exact batch parity, peak <= {MAX_MEMORY_FRACTION} of split)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
