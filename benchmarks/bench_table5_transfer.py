"""Table V — cross-dataset transfer of searched scoring functions.

The bench searches one scoring function per miniature benchmark, then trains
every searched structure on every benchmark and reports the full MRR matrix.
The paper's qualitative claim is that the diagonal dominates each column:
the structure searched on a dataset is (one of) the best for that dataset,
demonstrating that the searched SFs are KG-dependent.
"""

from __future__ import annotations

from _helpers import BENCH_SCALE, bench_search_config, bench_training_config, publish

from repro.analysis import format_table, transfer_matrix
from repro.core import AutoSFSearch
from repro.datasets import available_benchmarks, load_benchmark

#: Paper-reported Table V diagonal (MRR of each dataset's own searched SF).
PAPER_DIAGONAL = {"wn18": 0.952, "fb15k": 0.853, "wn18rr": 0.490, "fb15k237": 0.360, "yago310": 0.571}

SEARCH_BUDGET = 9


def build_table() -> str:
    training_config = bench_training_config()
    graphs, structures = {}, {}
    for benchmark_name in available_benchmarks():
        graph = load_benchmark(benchmark_name, scale=BENCH_SCALE)
        search = AutoSFSearch(graph, training_config, bench_search_config())
        result = search.run(max_evaluations=SEARCH_BUDGET)
        graphs[benchmark_name] = graph
        structures[benchmark_name] = result.best_structure

    transfer = transfer_matrix(graphs, structures, training_config, split="test")
    rows = transfer.as_rows()
    for row in rows:
        row["diagonal_paper"] = PAPER_DIAGONAL[row["searched_on"]]
    table = format_table(rows, title="Table V: MRR of SF searched on row-dataset applied to column-dataset")
    wins = transfer.diagonal_wins()
    summary = "datasets where their own searched SF wins the column: " + ", ".join(
        name for name, won in wins.items() if won
    )
    return table + "\n" + summary


def test_table5_transfer(benchmark):
    table = benchmark.pedantic(build_table, rounds=1, iterations=1)
    publish("table5_transfer", table)
    assert "searched_on" in table
