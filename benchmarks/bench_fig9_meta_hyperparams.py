"""Figure 9 — sensitivity to the meta hyper-parameters N and K2.

The paper varies the candidate-pool size N (128 / 256 / 512) and the number
of trained candidates per step K2 (4 / 8 / 16) and finds the search curve
barely changes, while all settings clearly beat the bare greedy baseline.
The bench sweeps scaled-down values of both knobs on WN18RR.
"""

from __future__ import annotations

from _helpers import BENCH_SCALE, bench_search_config, bench_training_config, publish

from repro.analysis import format_series
from repro.core import AutoSFSearch, CandidateEvaluator
from repro.datasets import load_benchmark

BUDGET = 9

SETTINGS = {
    "N=8,K2=4": {"candidates_per_step": 8, "train_per_step": 4},
    "N=16,K2=4": {"candidates_per_step": 16, "train_per_step": 4},
    "N=32,K2=4": {"candidates_per_step": 32, "train_per_step": 4},
    "N=16,K2=2": {"candidates_per_step": 16, "train_per_step": 2},
    "N=16,K2=8": {"candidates_per_step": 16, "train_per_step": 8},
    "greedy_baseline": {"use_filter": False, "use_predictor": False},
}


def build_report() -> str:
    training_config = bench_training_config()
    graph = load_benchmark("wn18rr", scale=BENCH_SCALE)
    evaluator = CandidateEvaluator(graph, training_config)
    curves = {}
    for name, overrides in SETTINGS.items():
        config = bench_search_config(**overrides)
        result = AutoSFSearch(graph, training_config, config, evaluator=evaluator).run(
            max_evaluations=BUDGET
        )
        curves[name] = result.anytime_curve()
    return format_series(
        curves,
        title="Fig. 9 (wn18rr): sensitivity of the search to N and K2",
        index_label="model#",
    )


def test_fig9_meta_hyperparams(benchmark):
    report = benchmark.pedantic(build_report, rounds=1, iterations=1)
    publish("fig9_meta_hyperparams", report)
    assert "greedy_baseline" in report
