"""Figure 7 — ablation of the filter and the predictor.

Four search variants run with the same training budget on WN18RR and
FB15k-237: the full AutoSF, AutoSF without the filter, AutoSF without the
predictor, and the bare greedy search (neither).  The paper's finding is
that removing either component degrades search efficiency — the any-time
curve of the full algorithm dominates.
"""

from __future__ import annotations

from _helpers import BENCH_SCALE, bench_search_config, bench_training_config, publish

from repro.analysis import format_series
from repro.core import AutoSFSearch, CandidateEvaluator
from repro.datasets import load_benchmark

DATASETS = ("wn18rr", "fb15k237")
BUDGET = 9

VARIANTS = {
    "autosf": {"use_filter": True, "use_predictor": True},
    "no_filter": {"use_filter": False, "use_predictor": True},
    "no_predictor": {"use_filter": True, "use_predictor": False},
    "greedy_only": {"use_filter": False, "use_predictor": False},
}


def build_report() -> str:
    training_config = bench_training_config()
    sections = []
    for benchmark_name in DATASETS:
        graph = load_benchmark(benchmark_name, scale=BENCH_SCALE)
        # One evaluator per dataset: equivalent candidates across variants hit
        # the cache, which mirrors "same training budget" in wall-clock terms.
        evaluator = CandidateEvaluator(graph, training_config)
        curves = {}
        for variant_name, switches in VARIANTS.items():
            config = bench_search_config(**switches)
            result = AutoSFSearch(graph, training_config, config, evaluator=evaluator).run(
                max_evaluations=BUDGET
            )
            curves[variant_name] = result.anytime_curve()
        sections.append(
            format_series(
                curves,
                title=f"Fig. 7 ({benchmark_name}): ablation of filter / predictor",
                index_label="model#",
            )
        )
    return "\n\n".join(sections)


def test_fig7_ablation_filter_predictor(benchmark):
    report = benchmark.pedantic(build_report, rounds=1, iterations=1)
    publish("fig7_ablation_filter_predictor", report)
    assert "greedy_only" in report
