"""Serving end to end: train, export an artifact, batch-query the engine.

Run with::

    PYTHONPATH=src python examples/serve_queries.py

The script trains a small ComplEx model on the WN18RR miniature benchmark,
exports it as a versioned serving artifact (manifest + params + vocab),
loads the artifact back, and answers a heterogeneous batch of head/tail
queries through the batched :class:`InferenceEngine` — once unfiltered and
once with known train/valid positives removed — printing the engine's
throughput counters at the end.  The same artifact can then be served over
HTTP with ``repro-autosf serve --artifact <dir>``.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.datasets import load_benchmark
from repro.kge import train_model
from repro.serving import (
    InferenceEngine,
    export_artifact,
    known_positive_index,
    load_artifact,
)
from repro.utils.config import TrainingConfig


def main() -> None:
    graph = load_benchmark("wn18rr", scale=0.5)
    print(f"loaded {graph}")

    print("\ntraining ComplEx ...")
    config = TrainingConfig(dimension=32, epochs=30, batch_size=256, learning_rate=0.5, seed=0)
    model = train_model(graph, "complex", config)
    metrics = {"test_mrr": model.evaluate(graph, split="test").mrr}

    with tempfile.TemporaryDirectory() as workdir:
        # 1. Export: a self-contained, versioned artifact directory.
        artifact_dir = export_artifact(
            model, Path(workdir) / "artifact", graph=graph, metrics=metrics
        )
        artifact = load_artifact(artifact_dir)
        print(f"\nexported artifact: {artifact.describe()}")

        # 2. Engine: batched inference with known-positive filtering.
        engine = InferenceEngine.from_artifact(
            artifact, filter_index=known_positive_index(graph)
        )

        # 3. Batch query: heterogeneous head/tail queries in one call.
        workload = []
        for h, r, t in graph.test[:5]:
            workload.append(("tail", int(h), int(r)))
            workload.append(("head", int(t), int(r)))

        plain = engine.query_batch(workload, top_k=3)
        filtered = engine.query_batch(workload, top_k=3, filtered=True)
        print("\nquery -> top-3 (unfiltered | known positives removed)")
        for (direction, entity, relation), answer, novel in zip(workload, plain, filtered):
            relation_label = artifact.relation_label(relation)
            shown = ", ".join(f"e{e} ({s:.2f})" for e, s in answer)
            shown_novel = ", ".join(f"e{e} ({s:.2f})" for e, s in novel)
            print(f"  {direction:>4} (e{entity}, {relation_label}): {shown}  |  {shown_novel}")

        stats = engine.stats()
        select_s = sum(phase["total"] for phase in stats["timings"].values())
        print(f"\nengine served {stats['queries_served']} queries "
              f"({stats['cache_hits']} cache hits) in {select_s * 1000:.1f} ms")


if __name__ == "__main__":
    main()
