"""Quickstart: train one knowledge-graph-embedding model and inspect it.

Run with::

    python examples/quickstart.py

The script loads the WN18RR miniature benchmark, trains the SimplE scoring
function with the multi-class loss (the training pipeline of Alg. 1 in the
AutoSF paper), reports filtered link-prediction metrics and shows a few
tail-prediction queries.
"""

from __future__ import annotations

from repro.datasets import dataset_statistics, load_benchmark
from repro.kge import train_model
from repro.utils.config import TrainingConfig


def main() -> None:
    graph = load_benchmark("wn18rr", scale=0.5)
    print(f"loaded {graph}")
    print("relation-pattern mix:", dataset_statistics(graph).as_row())

    config = TrainingConfig(
        dimension=32,
        epochs=40,
        batch_size=256,
        learning_rate=0.5,
        l2_penalty=1e-4,
        seed=0,
    )
    print("\ntraining SimplE ...")
    model = train_model(graph, "simple", config)

    for split in ("valid", "test"):
        result = model.evaluate(graph, split=split)
        print(f"{split:>5}: MRR={result.mrr:.3f}  H@1={result.hits_at(1):.3f}  "
              f"H@10={result.hits_at(10):.3f}  MR={result.mean_rank:.1f}")

    print("\nexample tail predictions (head, relation) -> top-3 tails")
    for h, r, t in graph.test[:5]:
        predictions = model.predict_tails(int(h), int(r), top_k=3)
        relation_name = graph.relation_names[int(r)] if graph.relation_names else str(int(r))
        formatted = ", ".join(f"e{entity} ({score:.2f})" for entity, score in predictions)
        print(f"  (e{int(h)}, {relation_name}) -> {formatted}   [true tail: e{int(t)}]")

    accuracy = model.classify(graph)
    print(f"\ntriplet-classification accuracy: {accuracy:.3f}")


if __name__ == "__main__":
    main()
