"""Drive the unified experiment API end to end: spec -> run -> compare -> export.

Run with::

    python examples/run_experiment.py [output_dir]

The script builds two declarative :class:`~repro.experiments.ExperimentSpec`
objects — the progressive greedy search and the random baseline, identical
except for the ``search.strategy`` field — runs both through the
:class:`~repro.experiments.ExperimentRunner` (one versioned run directory
each), compares their any-time curves, and exports the greedy run's best
model as a serving artifact.  Everything shown here maps one-to-one onto the
CLI::

    repro-autosf run spec.json --run-dir runs/greedy
    repro-autosf compare runs/greedy runs/random
    repro-autosf export --run runs/greedy --output artifact
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro.analysis import format_run_comparison
from repro.experiments import (
    DatasetSpec,
    ExperimentSpec,
    ExportSpec,
    SearchSpec,
    run_experiment,
)
from repro.serving import load_artifact
from repro.utils.config import PredictorConfig, TrainingConfig


def build_spec(strategy: str) -> ExperimentSpec:
    return ExperimentSpec(
        name=f"example-{strategy}",
        seed=0,
        dataset=DatasetSpec(benchmark="wn18rr", scale=0.3, seed=0),
        training=TrainingConfig(dimension=16, epochs=8, batch_size=256, learning_rate=0.5),
        search=SearchSpec(
            strategy=strategy,
            budget=8,
            max_blocks=6,
            candidates_per_step=12,
            top_parents=4,
            train_per_step=3,
            num_blocks=6,  # read by the random strategy
        ),
        predictor=PredictorConfig(epochs=150),
        # Export the best model as a serving artifact straight from the run.
        export=ExportSpec(enabled=(strategy == "greedy"), with_metrics=True),
    )


def main(output_dir: str = "example-runs") -> None:
    base = Path(output_dir)

    records = []
    for strategy in ("greedy", "random"):
        spec = build_spec(strategy)
        run_dir = base / strategy
        print(f"running {spec.name!r} -> {run_dir}")
        # A spec is plain JSON on disk; this is what `repro-autosf run` reads.
        spec.save(run_dir.with_suffix(".json"))
        records.append(run_experiment(spec, run_dir))

    print()
    print(format_run_comparison(records))

    greedy = records[0]
    artifact = load_artifact(greedy.path / "artifact")
    print(f"\nexported artifact: {greedy.path / 'artifact'}")
    for key, value in artifact.describe().items():
        print(f"  {key}: {value}")
    print("\nrun-directory contract:")
    for name in ("spec.json", "manifest.json", "history.jsonl", "report.json", "best/"):
        print(f"  {greedy.path / name}")


if __name__ == "__main__":
    main(*sys.argv[1:])
