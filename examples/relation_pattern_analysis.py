"""Analyze relation patterns of a knowledge graph and relate them to SFs.

Run with::

    python examples/relation_pattern_analysis.py [path/to/tsv/dataset]

Without an argument the script analyzes every built-in miniature benchmark;
with a directory argument it loads ``train.txt`` / ``valid.txt`` /
``test.txt`` in the standard tab-separated format (so real WN18/FB15k dumps
can be analyzed too).  For every dataset it reports the Table III row — how
many relations are symmetric, anti-symmetric, inverse or general asymmetric —
and explains which classical scoring functions can or cannot model that mix
(Tab. I / Tab. II of the paper).
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro.analysis import format_table
from repro.core.srf import can_be_skew_symmetric, can_be_symmetric
from repro.datasets import (
    available_benchmarks,
    dataset_statistics,
    load_benchmark,
    load_tsv_dataset,
)
from repro.datasets.statistics import RelationPattern
from repro.kge.scoring import CLASSICAL_STRUCTURES


def analyze(graph) -> dict:
    statistics = dataset_statistics(graph)
    row = {"dataset": graph.name}
    row.update(statistics.as_row())
    return row, statistics


def explain(statistics) -> None:
    needs_skew = statistics.count(RelationPattern.ANTI_SYMMETRIC) + statistics.count(
        RelationPattern.INVERSE
    )
    print(f"  {statistics.name}: "
          f"{statistics.count(RelationPattern.SYMMETRIC)} symmetric, "
          f"{statistics.count(RelationPattern.ANTI_SYMMETRIC)} anti-symmetric, "
          f"{statistics.count(RelationPattern.INVERSE)} inverse, "
          f"{statistics.count(RelationPattern.GENERAL)} general relations")
    for name, structure in CLASSICAL_STRUCTURES.items():
        if name == "cp":
            continue
        symmetric = can_be_symmetric(structure)
        skew = can_be_skew_symmetric(structure)
        suitable = symmetric and (skew or needs_skew == 0)
        verdict = "suitable" if suitable else "limited"
        print(f"    {name:>9}: models symmetric={symmetric}, anti-symmetric={skew} -> {verdict}")


def main() -> None:
    rows = []
    if len(sys.argv) > 1:
        directory = Path(sys.argv[1])
        graph = load_tsv_dataset(directory, name=directory.name)
        row, statistics = analyze(graph)
        rows.append(row)
        explain(statistics)
    else:
        for benchmark in available_benchmarks():
            graph = load_benchmark(benchmark, scale=0.5)
            row, statistics = analyze(graph)
            rows.append(row)
            explain(statistics)

    print("\n" + format_table(rows, title="Relation-pattern statistics (Table III style)"))


if __name__ == "__main__":
    main()
