"""Compare human-designed scoring functions across benchmarks.

Run with::

    python examples/compare_scoring_functions.py

This reproduces the motivation of the paper's introduction: no single
human-designed scoring function wins on every knowledge graph, because
different graphs have different relation-pattern mixes.  The script trains
DistMult, ComplEx, Analogy, SimplE and TransE on two structurally different
miniature benchmarks (WN18, rich in symmetric/inverse relations, and
FB15k-237, dominated by general asymmetric relations) and prints a Table
IV-style comparison.
"""

from __future__ import annotations

from repro.analysis import format_table
from repro.datasets import dataset_statistics, load_benchmark
from repro.kge import train_model
from repro.utils.config import TrainingConfig

MODELS = ("distmult", "complex", "analogy", "simple", "transe")
BENCHMARKS = ("wn18", "fb15k237")


def main() -> None:
    config = TrainingConfig(dimension=32, epochs=30, batch_size=256, learning_rate=0.5, seed=0)

    rows = []
    winners = {}
    for benchmark in BENCHMARKS:
        graph = load_benchmark(benchmark, scale=0.5)
        print(f"\n=== {benchmark}: {dataset_statistics(graph).as_row()} ===")
        best_model, best_mrr = None, -1.0
        for model_name in MODELS:
            model = train_model(graph, model_name, config)
            result = model.evaluate(graph, split="test")
            rows.append(
                {
                    "dataset": benchmark,
                    "model": model_name,
                    "mrr": result.mrr,
                    "hits@1": result.hits_at(1),
                    "hits@10": result.hits_at(10),
                }
            )
            print(f"  {model_name:>9}: MRR={result.mrr:.3f}  H@10={result.hits_at(10):.3f}")
            if result.mrr > best_mrr:
                best_model, best_mrr = model_name, result.mrr
        winners[benchmark] = best_model

    print("\n" + format_table(rows, title="Comparison of human-designed scoring functions"))
    print("\nbest model per dataset:", winners)
    print("Different datasets favour different scoring functions — the observation")
    print("that motivates searching a KG-dependent scoring function (AutoSF).")


if __name__ == "__main__":
    main()
