"""Run the AutoSF progressive greedy search on a miniature benchmark.

Run with::

    python examples/search_scoring_function.py [benchmark]

where ``benchmark`` is one of wn18, fb15k, wn18rr, fb15k237, yago310
(default: wn18rr).  The script searches for a scoring function in the
block-structured bilinear space (Alg. 2 of the paper), prints the any-time
best curve, and finishes with a case study of the best structure: its block
matrix (Fig. 5 style), its SRF, and whether it is a novel structure or a
rediscovered classical model.
"""

from __future__ import annotations

import sys

from repro.analysis import CaseStudy
from repro.core import AutoSFSearch
from repro.datasets import dataset_statistics, load_benchmark
from repro.kge import train_model
from repro.utils.config import PredictorConfig, SearchConfig, TrainingConfig


def main(benchmark: str = "wn18rr") -> None:
    graph = load_benchmark(benchmark, scale=0.5)
    statistics = dataset_statistics(graph)
    print(f"searching a scoring function for {graph}")
    print("relation-pattern mix:", statistics.as_row())

    training_config = TrainingConfig(
        dimension=16, epochs=20, batch_size=256, learning_rate=0.5, seed=0
    )
    search_config = SearchConfig(
        max_blocks=6,
        candidates_per_step=24,
        top_parents=5,
        train_per_step=6,
        predictor=PredictorConfig(epochs=200),
        seed=0,
    )

    search = AutoSFSearch(graph, training_config, search_config)
    result = search.run()

    print(f"\ntrained {result.num_evaluations} candidate scoring functions")
    print("any-time best validation MRR:",
          " ".join(f"{value:.3f}" for value in result.anytime_curve()))
    print("filter statistics:", result.filter_statistics)
    print("timing (seconds per phase):",
          {name: round(values["total"], 2) for name, values in result.timing.summary().items()})

    study = CaseStudy(graph.name, result.best_structure, result.best_mrr, statistics)
    print("\n" + study.report())

    # Retrain the winner with a larger dimension (the paper's fine-tune step)
    # and report the held-out test metrics.
    final_config = training_config.replace(dimension=32, epochs=40)
    model = train_model(graph, result.best_structure, final_config)
    test_result = model.evaluate(graph, split="test")
    print(f"\nfinal test metrics at d={final_config.dimension}: "
          f"MRR={test_result.mrr:.3f}  H@1={test_result.hits_at(1):.3f}  "
          f"H@10={test_result.hits_at(10):.3f}")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "wn18rr")
