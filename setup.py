"""Setup shim.

The pyproject.toml metadata is authoritative; this file exists so that the
package can be installed in environments whose pip/setuptools combination
cannot build PEP 660 editable wheels offline (``python setup.py develop``
keeps working there).
"""

from setuptools import setup

setup()
